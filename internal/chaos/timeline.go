// The timeline codec: a JSON representation of a Scenario, so fault
// schedules can cross process boundaries — written by hand or by the
// planpd chaos CLI, shipped to a daemon's /chaos control API, compiled
// against that daemon's engine, and played there. A timeline is plain
// data; Compile validates every reference (links, nodes, directions,
// backend capabilities) against the target engine up front, so a bad
// timeline is a structured error at staging time, never a panic on a
// timer goroutine mid-experiment.
//
//	{
//	  "name": "partition-and-heal",
//	  "steps": [
//	    {"at_ms": 0,    "op": "loss", "link": "gateway-server0", "p": 0.9, "dir": "fwd"},
//	    {"at_ms": 2000, "op": "partition", "links": ["gateway-server0"]},
//	    {"at_ms": 5000, "op": "heal"},
//	    {"at_ms": 5000, "op": "clockskew", "node": "server0", "skew_ms": 250}
//	  ]
//	}
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"
)

// Timeline is the wire form of a fault schedule.
type Timeline struct {
	// Name labels the timeline in /chaos status and logs.
	Name string `json:"name"`
	// Steps are the scheduled interventions, offsets relative to start.
	Steps []TimelineStep `json:"steps"`
}

// TimelineStep is one wire-form intervention. Which fields matter
// depends on Op; Compile rejects steps with missing or nonsensical
// fields.
type TimelineStep struct {
	// AtMS is the step's offset from timeline start, in milliseconds.
	AtMS int64 `json:"at_ms"`
	// Op selects the intervention: down, up, flap, clear, loss,
	// corrupt, dup, delay, jitter (link ops, optionally directional);
	// partition, heal (link-set ops); crash, restart, clockskew
	// (node ops).
	Op string `json:"op"`
	// Link names the target link (link ops).
	Link string `json:"link,omitempty"`
	// Dir scopes a link op to one direction of a duplex-wired link:
	// "fwd", "rev", or empty for the whole link.
	Dir string `json:"dir,omitempty"`
	// Links names the target set (partition/heal; heal with an empty
	// set heals every wired link).
	Links []string `json:"links,omitempty"`
	// Node names the target node (crash/restart/clockskew).
	Node string `json:"node,omitempty"`
	// P is the per-packet probability (loss/corrupt/dup).
	P float64 `json:"p,omitempty"`
	// DurMS is the duration operand in milliseconds (flap's down time,
	// delay's latency, jitter's bound).
	DurMS int64 `json:"dur_ms,omitempty"`
	// SkewMS is clockskew's signed offset in milliseconds (0 heals).
	SkewMS int64 `json:"skew_ms,omitempty"`
}

// ParseTimeline decodes a JSON timeline, strictly: unknown fields are
// errors (a typoed "prob" must not silently become p=0).
func ParseTimeline(b []byte) (*Timeline, error) {
	var tl Timeline
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tl); err != nil {
		return nil, fmt.Errorf("chaos: timeline: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("chaos: timeline: trailing data after JSON document")
	}
	if len(tl.Steps) == 0 {
		return nil, fmt.Errorf("chaos: timeline %q has no steps", tl.Name)
	}
	return &tl, nil
}

// Encode renders the timeline as JSON.
func (tl *Timeline) Encode() ([]byte, error) { return json.MarshalIndent(tl, "", "  ") }

// Compile validates the timeline against this engine — every link and
// node must be wired/adopted, directions require duplex wiring,
// clockskew requires a backend that supports it — and returns the
// executable scenario. The first invalid step aborts with an error
// naming it.
func (e *Engine) Compile(tl *Timeline) (*Scenario, error) {
	sc := NewScenario()
	for i, st := range tl.Steps {
		a, err := e.compileStep(st)
		if err != nil {
			return nil, fmt.Errorf("chaos: timeline %q step %d (%s at %dms): %w",
				tl.Name, i, st.Op, st.AtMS, err)
		}
		if st.AtMS < 0 {
			return nil, fmt.Errorf("chaos: timeline %q step %d (%s): negative at_ms", tl.Name, i, st.Op)
		}
		sc.At(time.Duration(st.AtMS)*time.Millisecond, a)
	}
	return sc, nil
}

// checkLink validates a link reference and its optional direction.
func (e *Engine) checkLink(name, dir string) error {
	if name == "" {
		return fmt.Errorf("missing link")
	}
	l, ok := e.LookupLink(name)
	if !ok {
		return fmt.Errorf("unknown link %q (wired: %v)", name, e.LinkNames())
	}
	switch dir {
	case "":
	case "fwd", "rev":
		if !l.Duplex() {
			return fmt.Errorf("link %q is symmetric; per-direction faults need WireDuplex", name)
		}
	default:
		return fmt.Errorf("direction %q (want \"fwd\", \"rev\", or empty)", dir)
	}
	return nil
}

func (e *Engine) checkNode(name string) (*NodeHandle, error) {
	if name == "" {
		return nil, fmt.Errorf("missing node")
	}
	h, ok := e.LookupNode(name)
	if !ok {
		return nil, fmt.Errorf("unknown node %q (adopted: %v)", name, e.NodeNames())
	}
	return h, nil
}

func checkProb(p float64) error {
	if p < 0 || p > 1 {
		return fmt.Errorf("probability %v outside [0, 1]", p)
	}
	return nil
}

func (e *Engine) compileStep(st TimelineStep) (Action, error) {
	var zero Action
	dur := time.Duration(st.DurMS) * time.Millisecond
	switch st.Op {
	case "down", "up", "clear":
		if err := e.checkLink(st.Link, st.Dir); err != nil {
			return zero, err
		}
		switch st.Op {
		case "down":
			return DownDir(st.Link, st.Dir), nil
		case "up":
			return UpDir(st.Link, st.Dir), nil
		default:
			return ClearDir(st.Link, st.Dir), nil
		}
	case "flap":
		if st.Dir != "" {
			return zero, fmt.Errorf("flap does not take a direction")
		}
		if err := e.checkLink(st.Link, ""); err != nil {
			return zero, err
		}
		if dur <= 0 {
			return zero, fmt.Errorf("flap needs a positive dur_ms")
		}
		return Flap(st.Link, dur), nil
	case "loss", "corrupt", "dup":
		if err := e.checkLink(st.Link, st.Dir); err != nil {
			return zero, err
		}
		if err := checkProb(st.P); err != nil {
			return zero, err
		}
		switch st.Op {
		case "loss":
			return LossDir(st.Link, st.Dir, st.P), nil
		case "corrupt":
			return CorruptDir(st.Link, st.Dir, st.P), nil
		default:
			return DuplicateDir(st.Link, st.Dir, st.P), nil
		}
	case "delay", "jitter":
		if err := e.checkLink(st.Link, st.Dir); err != nil {
			return zero, err
		}
		if dur < 0 {
			return zero, fmt.Errorf("negative dur_ms")
		}
		if st.Op == "delay" {
			return DelayDir(st.Link, st.Dir, dur), nil
		}
		return JitterDir(st.Link, st.Dir, dur), nil
	case "partition":
		if len(st.Links) == 0 {
			return zero, fmt.Errorf("partition needs links")
		}
		for _, name := range st.Links {
			if err := e.checkLink(name, ""); err != nil {
				return zero, err
			}
		}
		return Partition(st.Links...), nil
	case "heal":
		for _, name := range st.Links {
			if err := e.checkLink(name, ""); err != nil {
				return zero, err
			}
		}
		return Heal(st.Links...), nil
	case "crash", "restart":
		if _, err := e.checkNode(st.Node); err != nil {
			return zero, err
		}
		if st.Op == "crash" {
			return Crash(st.Node), nil
		}
		return Restart(st.Node), nil
	case "clockskew":
		h, err := e.checkNode(st.Node)
		if err != nil {
			return zero, err
		}
		if !h.CanSkew() {
			return zero, fmt.Errorf("node %q's backend does not support clock skew (rtnet only)", st.Node)
		}
		return ClockSkew(st.Node, time.Duration(st.SkewMS)*time.Millisecond), nil
	default:
		return zero, fmt.Errorf("unknown op %q", st.Op)
	}
}
