package mpeg

import (
	"testing"
	"time"

	"planp.dev/planp/internal/planprt"
)

func TestSingleViewerDirect(t *testing.T) {
	res, err := Run(Options{Viewers: 1, UseASPs: false}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerConnections != 1 {
		t.Errorf("connections = %d, want 1", res.ServerConnections)
	}
	// ~9 seconds of 25 fps.
	if res.ViewerFrames[0] < 200 {
		t.Errorf("viewer received %d frames, want ~225", res.ViewerFrames[0])
	}
}

func TestWithoutASPsServerLoadScalesLinearly(t *testing.T) {
	res, err := Run(Options{Viewers: 4, UseASPs: false}, 12*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerConnections != 4 {
		t.Errorf("connections = %d, want 4 (one per viewer)", res.ServerConnections)
	}
	// Each viewer pulls its own copy, so frames sent scale with viewers.
	if res.ServerFrames < 3*res.ViewerFrames[0] {
		t.Errorf("server sent %d frames for 4 viewers; expected roughly 4x a single stream", res.ServerFrames)
	}
}

func TestWithASPsServerServesOneConnection(t *testing.T) {
	res, err := Run(Options{Viewers: 4, UseASPs: true}, 12*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerConnections != 1 {
		t.Fatalf("connections = %d, want 1 (the ASPs share the stream)", res.ServerConnections)
	}
	// Every viewer must still receive the video.
	for i, frames := range res.ViewerFrames {
		if frames < 150 {
			t.Errorf("viewer %d received only %d frames", i+1, frames)
		}
	}
}

func TestSharedViewersGetSetupFromMonitor(t *testing.T) {
	tb, err := NewTestbed(Options{Viewers: 2, UseASPs: true, Stagger: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	tb.Sim.At(time.Second, tb.Clients[0].Start)
	tb.Sim.At(3*time.Second, tb.Clients[1].Start)
	tb.Sim.RunUntil(8 * time.Second)

	first, second := tb.Clients[0], tb.Clients[1]
	if !first.Connected {
		t.Error("first viewer should connect directly (stream unknown)")
	}
	if second.Connected {
		t.Error("second viewer should not open a connection")
	}
	if second.SharedWith != first.Node.Address() {
		t.Errorf("second viewer shares with %s, want %s", second.SharedWith, first.Node.Address())
	}
	if string(second.Setup) != string(first.Setup) {
		t.Errorf("setup info differs: %x vs %x", second.Setup, first.Setup)
	}
	if second.Frames == 0 {
		t.Error("second viewer captured no frames")
	}
	// GOP structure survives capture: I frames present in ratio ~1/12.
	if second.IFrames == 0 {
		t.Error("no I frames captured")
	}
}

func TestSegmentTrafficDoesNotScaleWithViewers(t *testing.T) {
	frames := map[int]int64{}
	for _, viewers := range []int{1, 4} {
		res, err := Run(Options{Viewers: viewers, UseASPs: true}, 12*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		frames[viewers] = res.ServerFrames
	}
	// With sharing, server transmission is independent of viewer count
	// (modulo the staggered start shifting the window slightly).
	ratio := float64(frames[4]) / float64(frames[1])
	if ratio > 1.15 {
		t.Errorf("server frames grew %.2fx from 1 to 4 viewers; sharing should keep it flat", ratio)
	}
}

func TestFallbackWithoutMonitor(t *testing.T) {
	// Client ASPs deployed but no monitor: the query times out and the
	// viewer falls back to a direct connection.
	tb, err := NewTestbed(Options{Viewers: 1, UseASPs: true})
	if err != nil {
		t.Fatal(err)
	}
	tb.Monitor.Processor = nil // monitor machine lost its program
	tb.Clients[0].Start()
	tb.Sim.RunUntil(5 * time.Second)
	if !tb.Clients[0].Connected {
		t.Error("viewer should fall back to a direct connection")
	}
	if tb.Clients[0].Frames == 0 {
		t.Error("fallback viewer received no frames")
	}
}

func TestTeardownUnregistersStream(t *testing.T) {
	tb, err := NewTestbed(Options{Viewers: 2, UseASPs: true})
	if err != nil {
		t.Fatal(err)
	}
	first, second := tb.Clients[0], tb.Clients[1]
	tb.Sim.At(time.Second, first.Start)
	tb.Sim.At(2*time.Second, first.Teardown)
	// After teardown the monitor must treat the stream as gone: the
	// second viewer connects directly.
	tb.Sim.At(4*time.Second, second.Start)
	tb.Sim.RunUntil(8 * time.Second)
	if !second.Connected {
		t.Error("second viewer should connect directly after teardown")
	}
	if tb.Server.Connections != 2 {
		t.Errorf("connections = %d, want 2", tb.Server.Connections)
	}
}

func TestEnginesAgreeOnSharing(t *testing.T) {
	for _, eng := range []planprt.EngineKind{planprt.EngineInterp, planprt.EngineBytecode, planprt.EngineJIT} {
		res, err := Run(Options{Viewers: 3, UseASPs: true, Engine: eng}, 10*time.Second)
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if res.ServerConnections != 1 {
			t.Errorf("%s: connections = %d, want 1", eng, res.ServerConnections)
		}
	}
}
