package mpeg_test

import (
	"testing"
	"time"

	"planp.dev/planp/internal/apps/mpeg"
	"planp.dev/planp/internal/rtnet"
	"planp.dev/planp/internal/substrate"
)

// TestMPEGOnRTNet is the §3.3 wall-clock smoke test: the unmodified
// point-to-point video server and a baseline (direct-connect) viewer
// run on the real-time backend — request, setup, a burst of frames at
// the real 40 ms frame interval, then teardown. The monitor/capture
// ASPs stay simulator-only (rtnet links have no promiscuous shared
// segment), so the viewer runs with UseMonitor off. Wall clocks make
// exact frame counts timing-dependent; assertions are directional.
func TestMPEGOnRTNet(t *testing.T) {
	nw := rtnet.New(1)
	defer nw.Close()

	srvNode := rtnet.NewNode(nw, "videoserver", substrate.MustAddr("10.9.0.1"))
	router := rtnet.NewNode(nw, "router", substrate.MustAddr("10.9.0.254"))
	viewer := rtnet.NewNode(nw, "viewer", substrate.MustAddr("10.8.0.10"))
	router.Forwarding = true

	sr, rs := rtnet.NewLink(nw, srvNode, router, 100_000_000)
	rv, vr := rtnet.NewLink(nw, router, viewer, 10_000_000)
	srvNode.SetDefaultRoute(sr)
	router.AddRoute(srvNode.Address(), rs)
	router.AddRoute(viewer.Address(), rv)
	viewer.SetDefaultRoute(vr)

	server := mpeg.NewServer(srvNode)
	client := mpeg.NewClient(viewer, srvNode.Address(), 0, 1, false)

	nw.Start()

	client.Start()

	// Half a second of real time is ~12 frame intervals; ask only for
	// "several frames and at least one I-frame" (the GOP opens with I).
	deadline := time.Now().Add(5 * time.Second)
	for {
		frames, _, iframes := client.Stats()
		if frames >= 5 && iframes >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("frames=%d iframes=%d after %v, want >=5 with an I-frame", frames, iframes, 5*time.Second)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !client.HasSetup() {
		t.Fatal("viewer never received the setup blob")
	}
	conns, srvFrames, srvBytes := server.Stats()
	if conns != 1 {
		t.Fatalf("server connections = %d, want 1", conns)
	}
	if srvFrames == 0 || srvBytes == 0 {
		t.Fatalf("server counters frames=%d bytes=%d, want both > 0", srvFrames, srvBytes)
	}

	// Teardown stops the stream: after the FIN settles and any
	// in-flight tick drains, the server's frame counter must freeze.
	client.Teardown()
	if !nw.Quiesce(5 * time.Second) {
		t.Fatal("network did not quiesce after teardown")
	}
	time.Sleep(2 * mpeg.FrameInterval)
	_, stopped, _ := server.Stats()
	time.Sleep(5 * mpeg.FrameInterval)
	_, after, _ := server.Stats()
	if after != stopped {
		t.Fatalf("server kept streaming after teardown: %d -> %d frames", stopped, after)
	}

	// The viewer saw (a prefix of) what the server sent — nothing
	// invented, and the server pushed at least as many frames as were
	// decoded.
	frames, bytes, _ := client.Stats()
	if frames > after {
		t.Fatalf("viewer decoded %d frames, server only sent %d", frames, after)
	}
	if bytes == 0 {
		t.Fatal("viewer decoded zero bytes")
	}
}
