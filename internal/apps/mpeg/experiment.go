// The §3.3 experiment: N viewers of the same stream on one segment,
// with and without the monitor/capture ASPs. The headline measurement
// is server load (connections, frames sent) as a function of the number
// of viewers: flat at 1x with the ASPs, linear without.
package mpeg

import (
	"fmt"
	"time"

	"planp.dev/planp/asp"
	"planp.dev/planp/internal/netsim"
	"planp.dev/planp/internal/planprt"
)

// Testbed is the §3.3 network: a remote video server behind a router,
// and a shared client segment hosting the monitor and the viewers.
type Testbed struct {
	Sim     *netsim.Simulator
	Server  *Server
	Monitor *netsim.Node
	Clients []*Client
	Segment *netsim.Segment

	MonitorRT *planprt.Runtime
	ClientRTs []*planprt.Runtime
}

// Options configure a run.
type Options struct {
	Viewers int
	UseASPs bool
	Engine  planprt.EngineKind
	Seed    int64
	// Stagger is the delay between successive viewers starting.
	Stagger time.Duration
	// Shards caps the simulator's parallel event loops (default 1);
	// this topology has no shard boundaries, so it always collapses
	// to the single-threaded engine.
	Shards int
}

// NewTestbed builds the topology and optionally deploys the ASPs.
func NewTestbed(opts Options) (*Testbed, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Stagger == 0 {
		opts.Stagger = time.Second
	}
	sim := netsim.New(netsim.WithSeed(opts.Seed), netsim.WithShards(opts.Shards))
	srvNode := netsim.NewNode(sim, "videoserver", netsim.MustAddr("10.9.0.1"))
	router := netsim.NewNode(sim, "router", netsim.MustAddr("10.9.0.254"))
	router.Forwarding = true
	monitor := netsim.NewNode(sim, "monitor", netsim.MustAddr("10.8.0.2"))

	up := netsim.Connect(sim, srvNode, router, netsim.LinkConfig{Bandwidth: 100_000_000})
	seg := netsim.NewSegment(sim, "client-lan", netsim.LinkConfig{Bandwidth: 10_000_000})
	rSeg := seg.Attach(router)
	mIf := seg.Attach(monitor)

	srvNode.SetDefaultRoute(up.Ifaces()[0])
	router.AddRoute(srvNode.Addr, up.Ifaces()[1])
	router.SetDefaultRoute(rSeg)
	monitor.SetDefaultRoute(mIf)

	tb := &Testbed{Sim: sim, Server: NewServer(srvNode), Monitor: monitor, Segment: seg}

	if opts.UseASPs {
		mIf.Promisc = true
		rt, err := planprt.Download(monitor, asp.MPEGMonitor, planprt.Config{Engine: opts.Engine})
		if err != nil {
			return nil, fmt.Errorf("mpeg: monitor download: %w", err)
		}
		tb.MonitorRT = rt
	}

	for i := 0; i < opts.Viewers; i++ {
		node := netsim.NewNode(sim, fmt.Sprintf("viewer%d", i+1), netsim.MustAddr(fmt.Sprintf("10.8.0.%d", 10+i)))
		ifc := seg.Attach(node)
		node.SetDefaultRoute(ifc)
		client := NewClient(node, srvNode.Addr, monitor.Addr, 1, opts.UseASPs)
		if opts.UseASPs {
			ifc.Promisc = true
			rt, err := planprt.Download(node, asp.MPEGClient, planprt.Config{Engine: opts.Engine})
			if err != nil {
				return nil, fmt.Errorf("mpeg: client download: %w", err)
			}
			tb.ClientRTs = append(tb.ClientRTs, rt)
		}
		tb.Clients = append(tb.Clients, client)
	}
	return tb, nil
}

// Result summarizes one run.
type Result struct {
	Viewers           int
	UseASPs           bool
	ServerConnections int64
	ServerFrames      int64
	ServerBytes       int64
	SegmentBits       int64 // total bits transmitted on the client segment
	ViewerFrames      []int64
}

// Run starts viewers staggered, plays for dur, and reports loads.
func Run(opts Options, dur time.Duration) (*Result, error) {
	if opts.Stagger == 0 {
		opts.Stagger = time.Second
	}
	tb, err := NewTestbed(opts)
	if err != nil {
		return nil, err
	}
	for i, c := range tb.Clients {
		client := c
		tb.Sim.At(time.Duration(i)*opts.Stagger+opts.Stagger, client.Start)
	}
	tb.Sim.RunUntil(dur)

	res := &Result{
		Viewers:           opts.Viewers,
		UseASPs:           opts.UseASPs,
		ServerConnections: tb.Server.Connections,
		ServerFrames:      tb.Server.FramesSent,
		ServerBytes:       tb.Server.BytesSent,
	}
	for _, c := range tb.Clients {
		res.ViewerFrames = append(res.ViewerFrames, c.Frames)
	}
	return res, nil
}
