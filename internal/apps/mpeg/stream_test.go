package mpeg

import (
	"testing"
	"time"

	"planp.dev/planp/internal/netsim"
)

func TestGOPStructure(t *testing.T) {
	// The GOP pattern drives frame sizes: I > P > B, one I per 12.
	var iFrames, pFrames, bFrames int
	for pos := 0; pos < 24; pos++ {
		kind, size := frameSize(pos)
		switch kind {
		case 'I':
			iFrames++
			if size != IFrameBytes {
				t.Errorf("I frame size %d", size)
			}
		case 'P':
			pFrames++
			if size != PFrameBytes {
				t.Errorf("P frame size %d", size)
			}
		case 'B':
			bFrames++
			if size != BFrameBytes {
				t.Errorf("B frame size %d", size)
			}
		}
	}
	if iFrames != 2 || pFrames != 6 || bFrames != 16 {
		t.Errorf("GOP counts I/P/B = %d/%d/%d over two GOPs", iFrames, pFrames, bFrames)
	}
}

func TestStreamBitrate(t *testing.T) {
	// One GOP every 12 frames at 25 fps: average payload bitrate.
	var total int
	for pos := 0; pos < 12; pos++ {
		_, size := frameSize(pos)
		total += size
	}
	bps := float64(total*8) * 25 / 12
	// ~0.7-1.5 Mb/s, MPEG-1-ish.
	if bps < 600_000 || bps > 2_000_000 {
		t.Errorf("stream bitrate %.0f b/s out of the MPEG-1 class", bps)
	}
}

func TestViewerReceivesGOPMix(t *testing.T) {
	res, err := Run(Options{Viewers: 1, UseASPs: false}, 12*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	tb, err := NewTestbed(Options{Viewers: 1, UseASPs: false})
	if err != nil {
		t.Fatal(err)
	}
	tb.Sim.At(time.Second, tb.Clients[0].Start)
	tb.Sim.RunUntil(13 * time.Second)
	c := tb.Clients[0]
	if c.Frames == 0 || c.IFrames == 0 {
		t.Fatalf("frames=%d iframes=%d", c.Frames, c.IFrames)
	}
	ratio := float64(c.IFrames) / float64(c.Frames)
	if ratio < 0.05 || ratio > 0.12 {
		t.Errorf("I-frame ratio %.3f, want ~1/12", ratio)
	}
}

func TestControlMessageCodec(t *testing.T) {
	req := controlMsg(TagRequest, 0xDEADBEEF)
	if req[0] != 'R' || u32(req, 1) != 0xDEADBEEF {
		t.Error("request codec")
	}
	s := setupMsg(7, []byte{1, 2, 3})
	if s[0] != 'S' || u32(s, 1) != 7 || len(s) != 8 {
		t.Error("setup codec")
	}
	d := dataMsg(7, 'P', 42, 100)
	if d[0] != 'D' || u32(d, 1) != 7 || d[5] != 'P' || u32(d, 6) != 42 || len(d) != 10+100 {
		t.Error("data codec")
	}
}

func TestServerIgnoresMalformedControl(t *testing.T) {
	sim := netsim.NewSimulator(1)
	node := netsim.NewNode(sim, "srv", netsim.MustAddr("10.0.0.1"))
	s := NewServer(node)
	// Short payload and non-TCP packets must not crash or register.
	node.Receive(netsim.NewTCP(netsim.MustAddr("10.0.0.2"), node.Addr, 1, ServerPort, 0, 0, []byte{1}), nil)
	node.Receive(netsim.NewUDP(netsim.MustAddr("10.0.0.2"), node.Addr, 1, ServerPort, controlMsg(TagRequest, 1)), nil)
	sim.Run()
	if s.Connections != 0 {
		t.Errorf("connections = %d after malformed control", s.Connections)
	}
}

func TestTeardownFromWrongClientIgnored(t *testing.T) {
	sim := netsim.NewSimulator(1)
	srvNode := netsim.NewNode(sim, "srv", netsim.MustAddr("10.0.0.1"))
	c1 := netsim.NewNode(sim, "c1", netsim.MustAddr("10.0.0.2"))
	c2 := netsim.NewNode(sim, "c2", netsim.MustAddr("10.0.0.3"))
	seg := netsim.NewSegment(sim, "lan", netsim.LinkConfig{Bandwidth: 10_000_000})
	for _, n := range []*netsim.Node{srvNode, c1, c2} {
		ifc := seg.Attach(n)
		n.SetDefaultRoute(ifc)
	}
	s := NewServer(srvNode)
	cl := NewClient(c1, srvNode.Addr, 0, 1, false)
	cl.Start()
	sim.RunUntil(2 * time.Second)
	framesAt2s := cl.Frames
	if framesAt2s == 0 {
		t.Fatal("stream never started")
	}
	// c2 (not the viewer) sends a teardown for stream 1: must be ignored.
	c2.Send(netsim.NewTCP(c2.Addr, srvNode.Addr, 5, ServerPort, 0, netsim.FlagPsh, controlMsg(TagTeardown, 1)))
	sim.RunUntil(4 * time.Second)
	if cl.Frames <= framesAt2s {
		t.Error("stream stopped after a teardown from the wrong client")
	}
	if s.Connections != 1 {
		t.Errorf("connections = %d", s.Connections)
	}
}
