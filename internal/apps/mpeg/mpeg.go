// Package mpeg implements the §3.3 experiment: a point-to-point MPEG
// video server (the OGI player stand-in), clients, and the monitor /
// capture ASP deployment that turns one server connection into
// multipoint delivery on a shared segment.
//
// Wire protocol (shared with asp/mpeg_monitor.planp and
// asp/mpeg_client.planp):
//
//	request   TCP  client -> server:7000   'R' stream:int32
//	setup     TCP  server:7000 -> client   'S' stream:int32 setup:blob
//	teardown  TCP  client -> server:7000   'F' stream:int32
//	data      UDP  server:7000 -> client:7001  'D' frame:byte seq:int32 payload
//	query     UDP  client -> monitor:7002  'Q' stream:int32
//	reply     tagged channel "mreply"      primary:host stream:int32 setup:blob
package mpeg

import (
	"sync"
	"time"

	"planp.dev/planp/internal/substrate"
)

// Protocol ports (shared with the ASP sources).
const (
	ServerPort = 7000
	DataPort   = 7001
	QueryPort  = 7002
)

// Message tags.
const (
	TagRequest  = 'R'
	TagSetup    = 'S'
	TagTeardown = 'F'
	TagData     = 'D'
	TagQuery    = 'Q'
)

// Stream parameters: a 1.5 Mb/s MPEG-1 stream at 25 frames/s with a
// 12-frame GOP (IBBPBBPBBPBB).
const (
	FrameInterval = 40 * time.Millisecond
	GOPPattern    = "IBBPBBPBBPBB"
	IFrameBytes   = 12000
	PFrameBytes   = 5000
	BFrameBytes   = 2200
)

// frameSize returns the byte size for the GOP position.
func frameSize(pos int) (byte, int) {
	switch GOPPattern[pos%len(GOPPattern)] {
	case 'I':
		return 'I', IFrameBytes
	case 'P':
		return 'P', PFrameBytes
	default:
		return 'B', BFrameBytes
	}
}

// putU32 appends a big-endian uint32.
func putU32(b []byte, v uint32) []byte {
	return append(b, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// u32 reads a big-endian uint32 at offset i (caller checks bounds).
func u32(b []byte, i int) uint32 {
	return uint32(b[i])<<24 | uint32(b[i+1])<<16 | uint32(b[i+2])<<8 | uint32(b[i+3])
}

// controlMsg builds 'R'/'F'/'Q' payloads.
func controlMsg(tag byte, stream uint32) []byte {
	return putU32([]byte{tag}, stream)
}

// setupMsg builds the 'S' payload.
func setupMsg(stream uint32, setup []byte) []byte {
	return append(putU32([]byte{TagSetup}, stream), setup...)
}

// dataMsg builds a 'D' payload.
func dataMsg(stream uint32, frame byte, seq uint32, size int) []byte {
	b := putU32([]byte{TagData}, stream)
	b = append(b, frame)
	b = putU32(b, seq)
	return append(b, make([]byte, size)...)
}

// connection is one active point-to-point stream at the server.
type connection struct {
	stream  uint32
	client  substrate.Addr
	port    uint16
	seq     uint32
	pos     int
	stopped bool
}

// Server is the unmodified point-to-point video server: one stream per
// requesting client, no awareness of sharing. It runs on either
// substrate backend; on rtnet, control handlers and frame ticks arrive
// on different goroutines, so all mutable state is behind mu.
type Server struct {
	Node substrate.Node

	mu    sync.Mutex
	conns map[uint32]*connection // keyed by stream; one viewer each

	// Connections counts every connection ever opened — the server
	// load figure the experiment compares (§3.3: with the ASPs, it
	// stays at 1 regardless of the number of viewers). Read the fields
	// directly only after the simulation has stopped; concurrent
	// readers (rtnet) must use Stats.
	Connections int64
	FramesSent  int64
	BytesSent   int64
}

// NewServer binds the video server on node.
func NewServer(node substrate.Node) *Server {
	s := &Server{Node: node, conns: map[uint32]*connection{}}
	node.BindTCP(ServerPort, s.onControl)
	return s
}

// Stats reports (connections, frames, bytes) under the lock — safe
// while the server is live on the real-time backend.
func (s *Server) Stats() (conns, frames, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Connections, s.FramesSent, s.BytesSent
}

func (s *Server) onControl(pkt *substrate.Packet) {
	b := pkt.Payload
	if len(b) < 5 || pkt.TCP == nil {
		return
	}
	stream := u32(b, 1)
	switch b[0] {
	case TagRequest:
		// The point-to-point server serves each request with its own
		// connection; a second request for the same stream replaces
		// the first (the experiment never does this — sharing is the
		// ASPs' job, invisible to the server).
		conn := &connection{stream: stream, client: pkt.IP.Src, port: pkt.TCP.SrcPort}
		s.mu.Lock()
		s.conns[stream] = conn
		s.Connections++
		s.mu.Unlock()
		// Setup response: decoder initialization blob (opaque bytes
		// derived from the stream id).
		setup := []byte{byte(stream), 0xBE, 0xEF, byte(stream >> 8)}
		resp := substrate.NewTCP(s.Node.Address(), pkt.IP.Src, ServerPort, pkt.TCP.SrcPort, 0, substrate.FlagAck, setupMsg(stream, setup))
		s.Node.Send(resp.Own())
		s.stream(conn)
	case TagTeardown:
		s.mu.Lock()
		if conn, ok := s.conns[stream]; ok && conn.client == pkt.IP.Src {
			conn.stopped = true
			delete(s.conns, stream)
		}
		s.mu.Unlock()
	}
}

// stream emits frames at the frame rate until torn down.
func (s *Server) stream(conn *connection) {
	var tick func()
	tick = func() {
		s.mu.Lock()
		if conn.stopped {
			s.mu.Unlock()
			return
		}
		frame, size := frameSize(conn.pos)
		conn.pos++
		conn.seq++
		stream, client, seq := conn.stream, conn.client, conn.seq
		s.FramesSent++
		s.BytesSent += int64(size)
		s.mu.Unlock()
		pkt := substrate.NewUDP(s.Node.Address(), client, ServerPort, DataPort, dataMsg(stream, frame, seq, size))
		s.Node.Send(pkt.Own())
		s.Node.Env().After(FrameInterval, tick)
	}
	s.Node.Env().After(FrameInterval, tick)
}

// Client is the (slightly modified, as in the paper) video player: it
// first asks the monitor whether the stream is already on the segment,
// then either consumes captured traffic or opens its own connection.
type Client struct {
	Node    substrate.Node
	Server  substrate.Addr
	Monitor substrate.Addr
	Stream  uint32

	// UseMonitor mirrors the paper's client modification; false gives
	// the baseline client that always connects directly.
	UseMonitor bool

	// mu guards the playback state below: on rtnet the data, reply,
	// and control handlers run on the node's delivery goroutine while
	// the fallback timer fires on a timer goroutine. Read the fields
	// directly only after the simulation has stopped; concurrent
	// readers must use Stats/HasSetup.
	mu          sync.Mutex
	Frames      int64
	Bytes       int64
	IFrames     int64
	Setup       []byte
	SharedWith  substrate.Addr // primary client when viewing a shared stream
	Connected   bool           // opened its own server connection
	QueryAnswer bool
	ctrlPort    uint16
}

// NewClient binds a player on node.
func NewClient(node substrate.Node, server, monitor substrate.Addr, stream uint32, useMonitor bool) *Client {
	c := &Client{Node: node, Server: server, Monitor: monitor, Stream: stream,
		UseMonitor: useMonitor, ctrlPort: uint16(20000 + stream%1000)}
	node.BindUDP(DataPort, c.onData)
	node.BindUDP(QueryPort, c.onReply)
	node.BindTCP(c.ctrlPort, c.onControl)
	return c
}

// Stats reports (frames, bytes, iframes) under the lock — safe while
// the player is live on the real-time backend.
func (c *Client) Stats() (frames, bytes, iframes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Frames, c.Bytes, c.IFrames
}

// HasSetup reports whether the decoder initialization blob arrived.
func (c *Client) HasSetup() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Setup != nil
}

// Start begins playback: query the monitor (if enabled) or connect.
func (c *Client) Start() {
	if c.UseMonitor {
		q := substrate.NewUDP(c.Node.Address(), c.Monitor, QueryPort, QueryPort, controlMsg(TagQuery, c.Stream))
		c.Node.Send(q.Own())
		// If the monitor does not answer promptly (no monitor on the
		// segment), fall back to a direct connection.
		c.Node.Env().After(500*time.Millisecond, func() {
			c.mu.Lock()
			fallback := !c.QueryAnswer && !c.Connected
			if fallback {
				c.Connected = true
			}
			c.mu.Unlock()
			if fallback {
				c.connect()
			}
		})
		return
	}
	c.mu.Lock()
	c.Connected = true
	c.mu.Unlock()
	c.connect()
}

// connect sends the stream request; the caller has already marked the
// client Connected (the flag and the send are split so the lock is not
// held across Send).
func (c *Client) connect() {
	req := substrate.NewTCP(c.Node.Address(), c.Server, c.ctrlPort, ServerPort, 0, substrate.FlagSyn|substrate.FlagPsh, controlMsg(TagRequest, c.Stream))
	c.Node.Send(req.Own())
}

// Teardown closes the client's own connection (no-op for shared
// viewers).
func (c *Client) Teardown() {
	c.mu.Lock()
	connected := c.Connected
	c.mu.Unlock()
	if !connected {
		return
	}
	fin := substrate.NewTCP(c.Node.Address(), c.Server, c.ctrlPort, ServerPort, 1, substrate.FlagFin|substrate.FlagPsh, controlMsg(TagTeardown, c.Stream))
	c.Node.Send(fin.Own())
}

// onControl handles the server's setup response.
func (c *Client) onControl(pkt *substrate.Packet) {
	b := pkt.Payload
	if len(b) >= 5 && b[0] == TagSetup && u32(b, 1) == c.Stream {
		c.mu.Lock()
		c.Setup = append([]byte(nil), b[5:]...)
		c.mu.Unlock()
	}
}

// onData consumes stream data — whether addressed to us or captured off
// the segment by the client ASP.
func (c *Client) onData(pkt *substrate.Packet) {
	b := pkt.Payload
	if len(b) < 10 || b[0] != TagData || u32(b, 1) != c.Stream {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Without a setup blob the decoder cannot start.
	if c.Setup == nil {
		return
	}
	c.Frames++
	c.Bytes += int64(len(b) - 10)
	if b[5] == 'I' {
		c.IFrames++
	}
}

// onReply handles the monitor's answer (delivered by the mreply channel
// of the client ASP: payload host:4 stream:4 len-prefixed? — the reply
// arrives as the raw encoded packet of the ASP's tuple).
func (c *Client) onReply(pkt *substrate.Packet) {
	// The capture ASP runs promiscuously and also delivers replies
	// addressed to other clients on the segment; only ours counts.
	if pkt.IP.Dst != c.Node.Address() {
		return
	}
	b := pkt.Payload
	// Encoded tuple payload: host(4) int(4) blob(rest).
	if len(b) < 8 {
		return
	}
	c.mu.Lock()
	c.QueryAnswer = true
	primary := substrate.Addr(u32(b, 0))
	stream := u32(b, 4)
	if stream != c.Stream {
		c.mu.Unlock()
		return
	}
	if primary == 0 {
		// Not on the segment: open our own connection.
		connect := !c.Connected
		if connect {
			c.Connected = true
		}
		c.mu.Unlock()
		if connect {
			c.connect()
		}
		return
	}
	c.SharedWith = primary
	c.Setup = append([]byte(nil), b[8:]...)
	c.mu.Unlock()
}
