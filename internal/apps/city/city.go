// Package city is the sharded-scheduler scale scenario: a metropolitan
// deployment combining the paper's two headline applications at a size
// the original testbed could never reach — R regional clusters, each
// running the §3.2 ASP load-balancing gateway in front of two servers
// and a §3.1-style audio multicast tree over its access network, tied
// together by an inter-region backbone ring.
//
// Each region is one island: a core router, the gateway (running the
// HTTP-gateway ASP templated with the region's addresses), two
// physical servers, E edge routers in a star around the core, and one
// aggregate client host per edge standing in for ClientsPerEdge modeled
// clients (each client sends one request per second, so an edge host
// offers ClientsPerEdge requests/s). The ring links between cores are
// the shard boundaries; their propagation delay is the PDES lookahead.
//
// Every output is an order-independent counter aggregated per region,
// so the scenario is byte-identical at any shard count (the in-tree
// invariance test runs it at 1 and 4 shards and diffs the output).
package city

import (
	"fmt"
	"strings"
	"time"

	"planp.dev/planp/asp"
	"planp.dev/planp/internal/apps/httpd"
	"planp.dev/planp/internal/netsim"
	"planp.dev/planp/internal/planprt"
)

// Config sizes the city.
type Config struct {
	Regions        int           // regional clusters on the backbone ring (>= 2 to shard)
	EdgesPerRegion int           // edge routers per region
	ClientsPerEdge int           // modeled clients aggregated behind each edge
	Duration       time.Duration // virtual time to simulate
	Shards         int           // requested event-loop shards (capped at Regions)
	Engine         planprt.EngineKind
	Seed           int64

	// CrossEvery makes every Nth edge address its requests to the NEXT
	// region's gateway instead of the local one (backbone traffic that
	// actually crosses shard boundaries). 0 disables cross traffic.
	CrossEvery int
	// AudioFanout is how many of a region's edges join the region's
	// audio multicast tree.
	AudioFanout int
}

func (c *Config) fill() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Engine == "" {
		c.Engine = planprt.EngineJIT
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.AudioFanout > c.EdgesPerRegion {
		c.AudioFanout = c.EdgesPerRegion
	}
}

// Presets. Tiny keeps unit tests fast; CI is the shard-invariance diff
// run in continuous integration; Full is the 10k-router, ~1M-client
// configuration BENCH_scale.json tracks.
var (
	Tiny = Config{Regions: 2, EdgesPerRegion: 6, ClientsPerEdge: 10,
		Duration: 50 * time.Millisecond, CrossEvery: 3, AudioFanout: 4}
	CI = Config{Regions: 4, EdgesPerRegion: 40, ClientsPerEdge: 25,
		Duration: 100 * time.Millisecond, CrossEvery: 8, AudioFanout: 8}
	Full = Config{Regions: 16, EdgesPerRegion: 640, ClientsPerEdge: 100,
		Duration: 200 * time.Millisecond, CrossEvery: 8, AudioFanout: 8}
)

// Result is one city run's outcome.
type Result struct {
	Output  string // deterministic per-region counter report
	Events  int    // simulator events processed
	Packets int64  // packets put on a wire (sent + forwarded)
	Nodes   int    // nodes in the topology
	Clients int    // modeled clients (EdgesPerRegion * ClientsPerEdge * Regions)
	Shards  int    // effective shard count
}

// region holds one cluster's construction-time handles.
type region struct {
	core, gw  *netsim.Node
	servers   [2]*netsim.Node
	edges     []*netsim.Node
	clients   []*netsim.Node
	responses int64 // responses delivered at this region's client hosts
	audio     int64 // audio frames delivered at this region's client hosts
	requests  int64 // requests originated by this region's client hosts
}

// Run builds the city and simulates cfg.Duration of it.
func Run(cfg Config) (*Result, error) {
	cfg.fill()
	sim := netsim.New(netsim.WithSeed(cfg.Seed), netsim.WithShards(cfg.Shards))
	regions := make([]*region, cfg.Regions)

	access := netsim.LinkConfig{Bandwidth: 100_000_000}   // edge <-> client
	feeder := netsim.LinkConfig{Bandwidth: 1_000_000_000} // core <-> edge/gateway
	lan := netsim.LinkConfig{Bandwidth: 1_000_000_000}    // gateway <-> server

	for r := 0; r < cfg.Regions; r++ {
		base := netsim.Addr(10<<24 | r<<16)
		reg := &region{}
		regions[r] = reg
		reg.core = netsim.NewNode(sim, fmt.Sprintf("core%d", r), base|1)
		reg.core.Forwarding = true
		reg.gw = netsim.NewNode(sim, fmt.Sprintf("gw%d", r), base|2)
		reg.gw.Forwarding = true
		reg.servers[0] = netsim.NewNode(sim, fmt.Sprintf("srvA%d", r), base|81)
		reg.servers[1] = netsim.NewNode(sim, fmt.Sprintf("srvB%d", r), base|109)

		// Gateway hangs off the core; servers hang off the gateway.
		gl := netsim.Connect(sim, reg.core, reg.gw, feeder)
		la := netsim.Connect(sim, reg.gw, reg.servers[0], lan)
		lb := netsim.Connect(sim, reg.gw, reg.servers[1], lan)
		coreToGw, gwToCore := gl.Ifaces()[0], gl.Ifaces()[1]
		reg.gw.AddRoute(reg.servers[0].Addr, la.Ifaces()[0])
		reg.gw.AddRoute(reg.servers[1].Addr, lb.Ifaces()[0])
		reg.gw.AddRoute(base|100, la.Ifaces()[0]) // unrewritten virtual traffic heads clusterward
		reg.gw.SetDefaultRoute(gwToCore)
		reg.servers[0].SetDefaultRoute(la.Ifaces()[1])
		reg.servers[1].SetDefaultRoute(lb.Ifaces()[1])
		reg.core.AddRoute(base|100, coreToGw)
		reg.core.AddRoute(reg.servers[0].Addr, coreToGw)
		reg.core.AddRoute(reg.servers[1].Addr, coreToGw)

		// The §3.2 gateway ASP, templated with this region's virtual and
		// physical server addresses.
		src := strings.NewReplacer(
			"10.0.0.100", (base | 100).String(),
			"10.0.0.81", (base | 81).String(),
			"10.0.0.109", (base | 109).String(),
		).Replace(asp.HTTPGateway)
		reg.gw.PerPacketCPU = httpd.EngineCPUFactor(string(cfg.Engine))
		if _, err := planprt.Download(reg.gw, src, planprt.Config{
			Engine: cfg.Engine,
			Verify: planprt.VerifySingleNode,
		}); err != nil {
			return nil, fmt.Errorf("city: region %d gateway download: %w", r, err)
		}

		// Servers answer each request with one fixed-size response; the
		// gateway ASP rewrites the source back to the virtual address.
		for _, srv := range reg.servers {
			node := srv
			body := make([]byte, 1200)
			node.BindTCP(80, func(req *netsim.Packet) {
				node.Send(netsim.NewTCP(node.Addr, req.IP.Src, 80, req.TCP.SrcPort,
					req.TCP.Seq, netsim.FlagAck|netsim.FlagPsh, body).Own())
			})
		}

		// Access star: edge routers around the core, one aggregate client
		// host behind each edge.
		group := netsim.Addr(224<<24 | r<<16 | 1)
		for e := 0; e < cfg.EdgesPerRegion; e++ {
			edge := netsim.NewNode(sim, fmt.Sprintf("edge%d.%d", r, e), base|netsim.Addr(0x100+e))
			edge.Forwarding = true
			ch := netsim.NewNode(sim, fmt.Sprintf("clients%d.%d", r, e), base|netsim.Addr(0x2000+e))
			el := netsim.Connect(sim, reg.core, edge, feeder)
			cl := netsim.Connect(sim, edge, ch, access)
			reg.core.AddRoute(ch.Addr, el.Ifaces()[0])
			edge.SetDefaultRoute(el.Ifaces()[1])
			edge.AddRoute(ch.Addr, cl.Ifaces()[0])
			ch.SetDefaultRoute(cl.Ifaces()[1])
			reg.edges = append(reg.edges, edge)
			reg.clients = append(reg.clients, ch)

			// Responses come back TCP to the request's (cycling) source
			// port, so the client host counts them in a raw binding; audio
			// frames have their own port.
			host, rg := ch, reg
			host.BindRaw(func(pkt *netsim.Packet) {
				if pkt.TCP != nil {
					rg.responses++
				}
			})
			host.BindUDP(5004, func(*netsim.Packet) { rg.audio++ })
			if e < cfg.AudioFanout {
				reg.core.AddMulticastRoute(group, el.Ifaces()[0])
				edge.AddMulticastRoute(group, cl.Ifaces()[0])
				host.JoinGroup(group)
			}
		}
	}

	// Backbone ring: the shard boundaries. Unknown destinations route
	// clockwise, so cross-region responses circle the ring home. Delays
	// are staggered per hop so cross-shard arrivals never tie with local
	// events at the same nanosecond.
	for r := 0; r < cfg.Regions; r++ {
		next := (r + 1) % cfg.Regions
		rl := netsim.Connect(sim, regions[r].core, regions[next].core, netsim.LinkConfig{
			Bandwidth:     10_000_000_000,
			Delay:         5*time.Millisecond + time.Duration(r)*1013*time.Nanosecond,
			ShardBoundary: true,
		})
		regions[r].core.SetDefaultRoute(rl.Ifaces()[0])
	}

	// Workload. Each client host offers ClientsPerEdge requests per
	// second (its modeled clients at one request/s each), phase-staggered
	// with prime offsets; every CrossEvery-th edge addresses the next
	// region's virtual server. The region core multicasts one 160-byte
	// audio frame every 20ms (a G.711 packet) down the region's tree.
	for r, reg := range regions {
		period := time.Second / time.Duration(cfg.ClientsPerEdge)
		for e, ch := range reg.clients {
			target := netsim.Addr(10<<24 | r<<16 | 100)
			if cfg.CrossEvery > 0 && e%cfg.CrossEvery == cfg.CrossEvery-1 {
				target = netsim.Addr(10<<24 | ((r+1)%cfg.Regions)<<16 | 100)
			}
			env := ch.Env()
			host, rg, dst := ch, reg, target
			phase := (time.Duration(r*104729+e*7919+13) * time.Nanosecond) % period
			i := 0
			var tick func()
			tick = func() {
				rg.requests++
				host.Send(netsim.NewTCP(host.Addr, dst, uint16(1024+i%60000), 80,
					uint32(i), netsim.FlagSyn|netsim.FlagPsh, make([]byte, 64+(i%7)*8)).Own())
				i++
				if env.Now()+period < cfg.Duration {
					env.After(period, tick)
				}
			}
			env.After(phase, tick)
		}

		core := reg.core
		group := netsim.Addr(224<<24 | r<<16 | 1)
		env := core.Env()
		frame := make([]byte, 160)
		audioPhase := time.Duration(r*7919+11) * time.Nanosecond
		var beat func()
		beat = func() {
			core.Send(netsim.NewUDP(core.Addr, group, 5004, 5004, frame))
			if env.Now()+20*time.Millisecond < cfg.Duration {
				env.After(20*time.Millisecond, beat)
			}
		}
		env.After(audioPhase, beat)
	}

	events := sim.RunUntil(cfg.Duration)

	res := &Result{
		Events:  events,
		Nodes:   cfg.Regions * (4 + 2*cfg.EdgesPerRegion),
		Clients: cfg.Regions * cfg.EdgesPerRegion * cfg.ClientsPerEdge,
		Shards:  sim.ShardCount(),
	}
	var b strings.Builder
	var totReq, totResp, totAudio, totDrop, totServed int64
	for r, reg := range regions {
		var drops int64
		nodes := append([]*netsim.Node{reg.core, reg.gw, reg.servers[0], reg.servers[1]}, reg.edges...)
		nodes = append(nodes, reg.clients...)
		for _, n := range nodes {
			st := n.Stats()
			drops += st.DroppedPkts
			res.Packets += st.SentPkts + st.ForwardedPkts
		}
		servedA := reg.servers[0].Stats().DeliveredPkts
		servedB := reg.servers[1].Stats().DeliveredPkts
		fmt.Fprintf(&b, "city.region%d.requests %d\n", r, reg.requests)
		fmt.Fprintf(&b, "city.region%d.responses %d\n", r, reg.responses)
		fmt.Fprintf(&b, "city.region%d.served_a %d\n", r, servedA)
		fmt.Fprintf(&b, "city.region%d.served_b %d\n", r, servedB)
		fmt.Fprintf(&b, "city.region%d.audio %d\n", r, reg.audio)
		fmt.Fprintf(&b, "city.region%d.drops %d\n", r, drops)
		totReq += reg.requests
		totResp += reg.responses
		totAudio += reg.audio
		totDrop += drops
		totServed += servedA + servedB
	}
	fmt.Fprintf(&b, "city.total.requests %d\n", totReq)
	fmt.Fprintf(&b, "city.total.responses %d\n", totResp)
	fmt.Fprintf(&b, "city.total.served %d\n", totServed)
	fmt.Fprintf(&b, "city.total.audio %d\n", totAudio)
	fmt.Fprintf(&b, "city.total.drops %d\n", totDrop)
	fmt.Fprintf(&b, "city.events %d\n", events)
	res.Output = b.String()
	return res, nil
}
