package city

import (
	"strings"
	"testing"
)

// TestTinyShardInvariance: the city's counter report must be
// byte-identical whatever shard count the engine runs on.
func TestTinyShardInvariance(t *testing.T) {
	ref := mustRun(t, Tiny, 1)
	if ref.Shards != 1 {
		t.Fatalf("reference run used %d shards", ref.Shards)
	}
	for _, n := range []int{2, 4} {
		got := mustRun(t, Tiny, n)
		want := n
		if want > Tiny.Regions {
			want = Tiny.Regions
		}
		if got.Shards != want {
			t.Errorf("shards=%d: effective count %d, want %d", n, got.Shards, want)
		}
		if got.Output != ref.Output {
			t.Errorf("shards=%d: output diverges\n--- shards=1 ---\n%s\n--- shards=%d ---\n%s",
				n, ref.Output, n, got.Output)
		}
		if got.Events != ref.Events {
			t.Errorf("shards=%d: %d events, want %d", n, got.Events, ref.Events)
		}
	}
}

// TestCIShardInvariance is the configuration the CI scale job diffs;
// running it in-tree keeps the job honest between workflow runs.
func TestCIShardInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("CI-preset city is slow in -short mode")
	}
	ref := mustRun(t, CI, 1)
	got := mustRun(t, CI, 4)
	if got.Shards != 4 {
		t.Fatalf("CI preset ran on %d shards, want 4", got.Shards)
	}
	if got.Output != ref.Output {
		t.Fatalf("CI city diverges between 1 and 4 shards\n--- shards=1 ---\n%s\n--- shards=4 ---\n%s",
			ref.Output, got.Output)
	}
}

// TestCityTrafficFlows sanity-checks the scenario itself: requests are
// answered, both servers share the load, audio reaches the tree, and
// cross-region traffic survives the ring.
func TestCityTrafficFlows(t *testing.T) {
	res := mustRun(t, Tiny, 2)
	get := func(key string) string {
		for _, line := range strings.Split(res.Output, "\n") {
			if f, ok := strings.CutPrefix(line, key+" "); ok {
				return f
			}
		}
		t.Fatalf("output missing %q:\n%s", key, res.Output)
		return ""
	}
	if get("city.total.requests") != get("city.total.responses") {
		t.Errorf("requests %s != responses %s (in-flight cutoff aside, Tiny should drain)",
			get("city.total.requests"), get("city.total.responses"))
	}
	if get("city.total.drops") != "0" {
		t.Errorf("unexpected drops: %s", get("city.total.drops"))
	}
	for _, key := range []string{"city.region0.served_a", "city.region0.served_b", "city.total.audio"} {
		if get(key) == "0" {
			t.Errorf("%s = 0, want traffic", key)
		}
	}
	if res.Nodes != Tiny.Regions*(4+2*Tiny.EdgesPerRegion) {
		t.Errorf("Nodes = %d, want %d", res.Nodes, Tiny.Regions*(4+2*Tiny.EdgesPerRegion))
	}
	if res.Packets == 0 || res.Events == 0 {
		t.Errorf("empty run: packets=%d events=%d", res.Packets, res.Events)
	}
}

func mustRun(t *testing.T, preset Config, shards int) *Result {
	t.Helper()
	cfg := preset
	cfg.Shards = shards
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}
