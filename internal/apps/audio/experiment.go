// The §3.1 experiments: the figure-5 topology, the figure-6 stepped-load
// bandwidth trace, and the figure-7 silent-period comparison.
package audio

import (
	"fmt"
	"time"

	"planp.dev/planp/asp"
	"planp.dev/planp/internal/netsim"
	"planp.dev/planp/internal/netsim/loadgen"
	"planp.dev/planp/internal/obs"
	"planp.dev/planp/internal/planprt"
)

// Adaptation selects how the router treats audio traffic.
type Adaptation int

// Adaptation modes.
const (
	AdaptNone   Adaptation = iota // plain IP forwarding
	AdaptASP                      // PLAN-P protocol download
	AdaptNative                   // hand-written Go baseline ("built-in C")
)

// String names the mode.
func (a Adaptation) String() string {
	switch a {
	case AdaptASP:
		return "asp"
	case AdaptNative:
		return "native"
	default:
		return "none"
	}
}

// Testbed is the figure-5 network: an audio source behind a router, and
// a shared client segment carrying both the audio client and the load
// generator.
type Testbed struct {
	Sim     *netsim.Simulator
	Source  *Source
	Router  *netsim.Node
	Client  *Client
	LoadGen *netsim.Node
	Segment *netsim.Segment
	Uplink  *netsim.Link // source -> router link (the chaos experiments cut this)
	Group   netsim.Addr

	RouterRT *planprt.Runtime // nil unless AdaptASP
	ClientRT *planprt.Runtime
	Wire     *obs.Series // on-wire audio data rate at the client

	// WireFormats counts audio packets by on-wire format tag as they
	// reach the client (before any restoration).
	WireFormats [4]int
}

// SegmentBandwidth is the client segment capacity (10 Mb/s Ethernet, as
// in the paper).
const SegmentBandwidth = 10_000_000

// Engine used for ASP downloads in experiments; the benchmark harness
// overrides it per run.
type Options struct {
	Adaptation Adaptation
	Engine     planprt.EngineKind
	Seed       int64
	// Shards caps the simulator's parallel event loops (default 1).
	// The audio topology declares no shard boundaries, so any value
	// collapses to the single-threaded engine; the knob exists so the
	// experiment harness can sweep one setting across all scenarios.
	Shards int
}

// NewTestbed builds the topology and installs the selected adaptation.
func NewTestbed(opts Options) (*Testbed, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	sim := netsim.New(netsim.WithSeed(opts.Seed), netsim.WithShards(opts.Shards))
	src := netsim.NewNode(sim, "source", netsim.MustAddr("10.1.0.1"))
	router := netsim.NewNode(sim, "router", netsim.MustAddr("10.1.0.254"))
	client := netsim.NewNode(sim, "client", netsim.MustAddr("10.2.0.1"))
	gen := netsim.NewNode(sim, "loadgen", netsim.MustAddr("10.2.0.2"))
	sink := netsim.NewNode(sim, "sink", netsim.MustAddr("10.2.0.3"))
	router.Forwarding = true

	up := netsim.Connect(sim, src, router, netsim.LinkConfig{Bandwidth: 100_000_000})
	seg := netsim.NewSegment(sim, "client-lan", netsim.LinkConfig{Bandwidth: SegmentBandwidth})
	rSeg := seg.Attach(router)
	cSeg := seg.Attach(client)
	gSeg := seg.Attach(gen)
	sSeg := seg.Attach(sink)

	src.SetDefaultRoute(up.Ifaces()[0])
	router.AddRoute(src.Addr, up.Ifaces()[1])
	router.SetDefaultRoute(rSeg)
	client.SetDefaultRoute(cSeg)
	gen.SetDefaultRoute(gSeg)
	sink.SetDefaultRoute(sSeg)

	group := netsim.MustAddr("224.5.5.5")
	router.AddMulticastRoute(group, rSeg)

	tb := &Testbed{
		Sim:     sim,
		Source:  &Source{Node: src, Group: group},
		Router:  router,
		LoadGen: gen,
		Segment: seg,
		Uplink:  up,
		Group:   group,
	}
	tb.Wire = MeterAudio(client)
	client.Tap(func(pkt *netsim.Packet) {
		if pkt.UDP != nil && pkt.UDP.DstPort == Port && len(pkt.Payload) > 0 {
			if f := int(pkt.Payload[0]); f >= 1 && f <= 3 {
				tb.WireFormats[f]++
			}
		}
	})
	tb.Client = NewClient(client, group)

	switch opts.Adaptation {
	case AdaptASP:
		rrt, err := planprt.Download(router, asp.AudioRouter, planprt.Config{Engine: opts.Engine})
		if err != nil {
			return nil, fmt.Errorf("audio: router download: %w", err)
		}
		crt, err := planprt.Download(client, asp.AudioClient, planprt.Config{Engine: opts.Engine})
		if err != nil {
			return nil, fmt.Errorf("audio: client download: %w", err)
		}
		tb.RouterRT, tb.ClientRT = rrt, crt
	case AdaptNative:
		InstallNative(router)
		crt, err := planprt.Download(client, asp.AudioClient, planprt.Config{Engine: opts.Engine})
		if err != nil {
			return nil, fmt.Errorf("audio: client download: %w", err)
		}
		tb.ClientRT = crt
	}
	return tb, nil
}

// SinkAddr is where background load is addressed.
func (tb *Testbed) SinkAddr() netsim.Addr { return netsim.MustAddr("10.2.0.3") }

// Figure6Result is the stepped-load run's outcome.
type Figure6Result struct {
	Series *obs.Series // audio data rate per second (b/s)
	// Phase means in kb/s over the stable tail of each phase.
	QuietKbps, LargeKbps, MediumKbps, SmallKbps float64
	// MediumOscillates reports whether the middle phase moved between
	// quality levels, as in the paper's figure 6 at t in [220,340).
	MediumOscillates bool
}

// Figure-6 load schedule (phase starts, as in the paper's time axis).
const (
	F6Quiet  = 0 * time.Second
	F6Large  = 100 * time.Second
	F6Medium = 220 * time.Second
	F6Small  = 340 * time.Second
	F6End    = 460 * time.Second
)

// Figure-6 background loads, chosen relative to the ASP's thresholds on
// a 10 Mb/s segment: large pins the load above the 8-bit threshold,
// medium sits at the 16-bit-mono boundary so quality oscillates, small
// sits in the 16-bit-mono band.
const (
	F6LargeBps  = 9_300_000
	F6MediumBps = 8_030_000
	F6SmallBps  = 5_500_000
)

// RunFigure6 replays the paper's stepped-load timeline and returns the
// measured audio bandwidth trace.
func (tb *Testbed) RunFigure6() *Figure6Result {
	gen := &loadgen.Generator{
		Node: tb.LoadGen, Dst: tb.SinkAddr(), DstPort: 40000,
		Steps: []loadgen.Step{
			{At: F6Quiet, Bps: 0},
			{At: F6Large, Bps: F6LargeBps},
			{At: F6Medium, Bps: F6MediumBps},
			{At: F6Small, Bps: F6SmallBps},
		},
	}
	gen.Start(tb.Sim, F6End)
	tb.Source.Start(tb.Sim, F6End)

	// Snapshot the wire-format mix at the medium phase boundaries so
	// the oscillation between 8- and 16-bit mono is observable.
	var atMedium, atSmall [4]int
	tb.Sim.At(F6Medium+10*time.Second, func() { atMedium = tb.WireFormats })
	tb.Sim.At(F6Small, func() { atSmall = tb.WireFormats })

	tb.Sim.RunUntil(F6End)
	tb.Client.Finish(F6End)

	res := &Figure6Result{Series: tb.Wire}
	phaseMean := func(from, to time.Duration) float64 {
		// Skip the first 10 s of each phase so the meter and the
		// adaptation have settled.
		return tb.Wire.Mean(from+10*time.Second, to) / 1000
	}
	res.QuietKbps = phaseMean(F6Quiet, F6Large)
	res.LargeKbps = phaseMean(F6Large, F6Medium)
	res.MediumKbps = phaseMean(F6Medium, F6Small)
	res.SmallKbps = phaseMean(F6Small, F6End)
	// Oscillation: during the stable part of the medium phase, both
	// 8-bit and 16-bit mono packets crossed the wire.
	mono16 := atSmall[2] - atMedium[2]
	mono8 := atSmall[3] - atMedium[3]
	res.MediumOscillates = mono16 > 0 && mono8 > 0
	return res
}

// Figure7Row is one configuration of the silent-period comparison.
type Figure7Row struct {
	LoadBps       int64
	Adaptation    Adaptation
	SilentPeriods int // runs of lost packets — audible dropouts
	LostPackets   int
	Stalls        int // long stalls (no playable audio > 3 intervals)
	Received      int
	Unplayable    int
	SegDrops      int64
}

// Figure7Loads are the background load levels swept for figure 7,
// bracketing the segment capacity. The interesting band is where the
// load plus full-quality audio exceeds capacity but the load plus
// degraded audio fits — adaptation then eliminates loss entirely.
var Figure7Loads = []int64{0, 9_000_000, 9_700_000, 9_900_000, 10_100_000}

// RunFigure7 runs one (load, adaptation) cell for the given duration
// using Poisson background traffic. The adaptation under test, engine,
// seed, and shard count all come from opts.
func RunFigure7(loadBps int64, dur time.Duration, opts Options) (*Figure7Row, error) {
	tb, err := NewTestbed(opts)
	if err != nil {
		return nil, err
	}
	if loadBps > 0 {
		const payload = 1000
		wire := int64(payload + netsim.IPHeaderLen + netsim.UDPHeaderLen)
		rate := float64(loadBps) / float64(wire*8)
		p := &loadgen.Poisson{Node: tb.LoadGen, Rate: rate, Emit: func() {
			tb.LoadGen.Send(netsim.NewUDP(tb.LoadGen.Addr, tb.SinkAddr(), 40000, 40000, make([]byte, payload)).Own())
		}}
		p.Start(tb.Sim, 0, dur)
	}
	tb.Source.Start(tb.Sim, dur)
	tb.Sim.RunUntil(dur)
	tb.Client.Finish(dur)
	return &Figure7Row{
		LoadBps:       loadBps,
		Adaptation:    opts.Adaptation,
		SilentPeriods: tb.Client.SilentPeriods,
		LostPackets:   tb.Client.LostPackets,
		Stalls:        tb.Client.Gaps.Gaps(),
		Received:      tb.Client.Gaps.Received() + tb.Client.Unplayable,
		Unplayable:    tb.Client.Unplayable,
		SegDrops:      tb.Segment.Dropped(),
	}, nil
}
