package audio

import (
	"testing"
	"time"

	"planp.dev/planp/asp"
	"planp.dev/planp/internal/lang/prims"
	"planp.dev/planp/internal/netsim"
	"planp.dev/planp/internal/netsim/loadgen"
	"planp.dev/planp/internal/planprt"
)

func TestSourceRate(t *testing.T) {
	tb, err := NewTestbed(Options{Adaptation: AdaptNone})
	if err != nil {
		t.Fatal(err)
	}
	tb.Source.Start(tb.Sim, 30*time.Second)
	tb.Sim.RunUntil(30 * time.Second)
	tb.Client.Finish(30 * time.Second)
	// 16-bit stereo at 176 kb/s of audio data.
	got := tb.Wire.Mean(5*time.Second, 30*time.Second)
	if got < 170_000 || got > 182_000 {
		t.Errorf("unloaded audio rate = %.0f b/s, want ~176k", got)
	}
	if tb.Client.Unplayable != 0 {
		t.Errorf("unplayable packets without load: %d", tb.Client.Unplayable)
	}
	if tb.Client.Gaps.Gaps() != 0 {
		t.Errorf("gaps without load: %d", tb.Client.Gaps.Gaps())
	}
}

func TestASPAdaptsUnderLoad(t *testing.T) {
	tb, err := NewTestbed(Options{Adaptation: AdaptASP})
	if err != nil {
		t.Fatal(err)
	}
	// Saturating background load from t=0.
	gen := &loadgen.Generator{Node: tb.LoadGen, Dst: tb.SinkAddr(), DstPort: 40000,
		Steps: []loadgen.Step{{At: 0, Bps: F6LargeBps}}}
	gen.Start(tb.Sim, 40*time.Second)
	tb.Source.Start(tb.Sim, 40*time.Second)
	tb.Sim.RunUntil(40 * time.Second)
	tb.Client.Finish(40 * time.Second)

	// The router must degrade to 8-bit mono: ~44 kb/s on the wire.
	got := tb.Wire.Mean(10*time.Second, 40*time.Second)
	if got < 38_000 || got > 55_000 {
		t.Errorf("adapted audio rate = %.0f b/s, want ~44k", got)
	}
	// The client ASP restores packets, so the unmodified player never
	// sees a format it cannot play.
	if tb.Client.Unplayable != 0 {
		t.Errorf("unplayable packets with client ASP: %d", tb.Client.Unplayable)
	}
	if tb.RouterRT.Stats().Errors != 0 {
		t.Errorf("router ASP exceptions: %d", tb.RouterRT.Stats().Errors)
	}
}

func TestWithoutClientASPDegradedPacketsUnplayable(t *testing.T) {
	// Router adapts but the client has no restoration ASP: the
	// unmodified player cannot decode mono packets. This is the
	// experiment that motivates downloading ASPs at end hosts too.
	tb, err := NewTestbed(Options{Adaptation: AdaptASP})
	if err != nil {
		t.Fatal(err)
	}
	tb.Client.Node.Processor = nil // strip the client ASP
	gen := &loadgen.Generator{Node: tb.LoadGen, Dst: tb.SinkAddr(), DstPort: 40000,
		Steps: []loadgen.Step{{At: 0, Bps: F6LargeBps}}}
	gen.Start(tb.Sim, 20*time.Second)
	tb.Source.Start(tb.Sim, 20*time.Second)
	tb.Sim.RunUntil(20 * time.Second)
	if tb.Client.Unplayable == 0 {
		t.Error("expected unplayable packets without the client ASP")
	}
}

func TestNativeMatchesASP(t *testing.T) {
	rates := map[string]float64{}
	for _, mode := range []Adaptation{AdaptASP, AdaptNative} {
		tb, err := NewTestbed(Options{Adaptation: mode})
		if err != nil {
			t.Fatal(err)
		}
		gen := &loadgen.Generator{Node: tb.LoadGen, Dst: tb.SinkAddr(), DstPort: 40000,
			Steps: []loadgen.Step{{At: 0, Bps: F6SmallBps}}}
		gen.Start(tb.Sim, 30*time.Second)
		tb.Source.Start(tb.Sim, 30*time.Second)
		tb.Sim.RunUntil(30 * time.Second)
		rates[mode.String()] = tb.Wire.Mean(10*time.Second, 30*time.Second)
	}
	// Both must settle on 16-bit mono (~88 kb/s) under the small load.
	for mode, rate := range rates {
		if rate < 80_000 || rate > 100_000 {
			t.Errorf("%s rate = %.0f b/s, want ~88k", mode, rate)
		}
	}
	diff := rates["asp"] - rates["native"]
	if diff < 0 {
		diff = -diff
	}
	if diff > 5_000 {
		t.Errorf("asp (%.0f) and native (%.0f) disagree by %.0f b/s", rates["asp"], rates["native"], diff)
	}
}

func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("460 virtual seconds")
	}
	tb, err := NewTestbed(Options{Adaptation: AdaptASP})
	if err != nil {
		t.Fatal(err)
	}
	res := tb.RunFigure6()
	if res.QuietKbps < 170 || res.QuietKbps > 182 {
		t.Errorf("quiet phase = %.1f kb/s, want ~176", res.QuietKbps)
	}
	if res.LargeKbps < 38 || res.LargeKbps > 60 {
		t.Errorf("large-load phase = %.1f kb/s, want ~44", res.LargeKbps)
	}
	if res.SmallKbps < 80 || res.SmallKbps > 100 {
		t.Errorf("small-load phase = %.1f kb/s, want ~88", res.SmallKbps)
	}
	if res.MediumKbps <= res.LargeKbps || res.MediumKbps >= res.QuietKbps {
		t.Errorf("medium phase = %.1f kb/s, should sit between large (%.1f) and quiet (%.1f)",
			res.MediumKbps, res.LargeKbps, res.QuietKbps)
	}
	if !res.MediumOscillates {
		t.Error("medium phase should oscillate between 8- and 16-bit mono")
	}
}

func TestFigure7AdaptationReducesGaps(t *testing.T) {
	if testing.Short() {
		t.Skip("long virtual run")
	}
	const load = 10_100_000 // over capacity
	with, err := RunFigure7(load, 60*time.Second, Options{Adaptation: AdaptASP, Engine: planprt.EngineJIT, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	without, err := RunFigure7(load, 60*time.Second, Options{Adaptation: AdaptNone, Engine: planprt.EngineJIT, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if without.SilentPeriods == 0 {
		t.Error("over-capacity load without adaptation should cause silent periods")
	}
	if with.SilentPeriods >= without.SilentPeriods {
		t.Errorf("adaptation should reduce silent periods: with=%d without=%d",
			with.SilentPeriods, without.SilentPeriods)
	}
	if with.Unplayable != 0 {
		t.Errorf("client ASP should keep every packet playable, %d were not", with.Unplayable)
	}
}

func TestDegradationMath(t *testing.T) {
	src := &Source{}
	payload := src.nextPayload()
	if got := prims.AudioFrames(prims.AudioStereo16, payload); got != FramesPerPacket {
		t.Fatalf("frames = %d, want %d", got, FramesPerPacket)
	}
	mono := prims.DegradeToMono16(payload)
	if mono[0] != prims.AudioMono16 || len(mono) != prims.AudioHeaderLen+FramesPerPacket*2 {
		t.Errorf("mono16 header/size wrong: tag=%d len=%d", mono[0], len(mono))
	}
	low := prims.DegradeToMono8(payload)
	if low[0] != prims.AudioMono8 || len(low) != prims.AudioHeaderLen+FramesPerPacket {
		t.Errorf("mono8 header/size wrong: tag=%d len=%d", low[0], len(low))
	}
	back := prims.RestoreStereo16(low)
	if back[0] != prims.AudioStereo16 || len(back) != len(payload) {
		t.Errorf("restore header/size wrong: tag=%d len=%d want %d", back[0], len(back), len(payload))
	}
	// Idempotence: degrading an already-degraded payload is a no-op.
	if again := prims.DegradeToMono8(low); string(again) != string(low) {
		t.Error("DegradeToMono8 not idempotent")
	}
	// Restoration preserves the sequence number.
	if back[1] != payload[1] || back[4] != payload[4] {
		t.Error("sequence number lost in degrade/restore cycle")
	}
}

func TestSegmentLoadVisibleToRouter(t *testing.T) {
	tb, err := NewTestbed(Options{Adaptation: AdaptNone})
	if err != nil {
		t.Fatal(err)
	}
	gen := &loadgen.Generator{Node: tb.LoadGen, Dst: tb.SinkAddr(), DstPort: 40000,
		Steps: []loadgen.Step{{At: 0, Bps: 5_000_000}}}
	gen.Start(tb.Sim, 5*time.Second)
	tb.Sim.RunUntil(5 * time.Second)
	ifc := tb.Router.RouteTo(tb.Group)
	if ifc == nil {
		t.Fatal("router has no route to the multicast group")
	}
	load := ifc.Load()
	if load < 40 || load > 60 {
		t.Errorf("router sees %d%% load, want ~50%%", load)
	}
}

func TestAdaptationComposesAcrossRouters(t *testing.T) {
	// Two ASP routers in series: a congested second hop can only
	// degrade further, never upgrade (degradation idempotence).
	sim := netsim.NewSimulator(3)
	src := netsim.NewNode(sim, "src", netsim.MustAddr("10.1.0.1"))
	r1 := netsim.NewNode(sim, "r1", netsim.MustAddr("10.1.0.254"))
	r2 := netsim.NewNode(sim, "r2", netsim.MustAddr("10.2.0.254"))
	cl := netsim.NewNode(sim, "cl", netsim.MustAddr("10.3.0.1"))
	r1.Forwarding, r2.Forwarding = true, true
	l0 := netsim.Connect(sim, src, r1, netsim.LinkConfig{Bandwidth: 100_000_000})
	l1 := netsim.Connect(sim, r1, r2, netsim.LinkConfig{Bandwidth: 10_000_000})
	l2 := netsim.Connect(sim, r2, cl, netsim.LinkConfig{Bandwidth: 256_000}) // slow last hop
	src.SetDefaultRoute(l0.Ifaces()[0])
	group := netsim.MustAddr("224.5.5.5")
	r1.AddMulticastRoute(group, l1.Ifaces()[0])
	r2.AddMulticastRoute(group, l2.Ifaces()[0])

	for _, n := range []*netsim.Node{r1, r2} {
		if _, err := planprt.Download(n, asp.AudioRouter, planprt.Config{}); err != nil {
			t.Fatal(err)
		}
	}
	client := NewClient(cl, group)
	wire := MeterAudio(cl)
	s := &Source{Node: src, Group: group}
	s.Start(sim, 30*time.Second)
	sim.RunUntil(30 * time.Second)

	// 176 kb/s audio on a 256 kb/s last hop is ~70% load: r2 degrades
	// on its own, with no load generator at all. Because the audio is
	// the only traffic, the control loop oscillates (degrading lowers
	// the measured load, which re-enables full quality), so assert that
	// substantial degradation happened rather than a stable level.
	got := wire.Mean(10*time.Second, 30*time.Second)
	if got < 60_000 || got > 170_000 {
		t.Errorf("two-router adapted rate = %.0f b/s, want degraded below 176k", got)
	}
	// Without a client ASP the delivered packets stay mono16: the
	// unmodified player counts them unplayable.
	if client.ByFormat[prims.AudioMono16] == 0 {
		t.Error("expected 16-bit mono packets at the client")
	}
}
