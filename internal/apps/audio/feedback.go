// End-to-end feedback adaptation: the comparison point §3.1 argues
// against. The client measures loss over a reporting interval and sends
// feedback to the source, which adjusts the quality it transmits at.
// Reaction time is bounded below by the feedback interval plus a
// round trip, and during that window the network stays congested —
// exactly the lag the in-router ASP avoids.
package audio

import (
	"time"

	"planp.dev/planp/asp"
	"planp.dev/planp/internal/lang/prims"
	"planp.dev/planp/internal/netsim"
	"planp.dev/planp/internal/planprt"
)

// FeedbackPort carries client loss reports back to the source.
const FeedbackPort = 5005

// FeedbackInterval is how often the client reports (a typical RTCP-ish
// period, far coarser than the router's 250 ms load window).
const FeedbackInterval = 2 * time.Second

// Loss thresholds for quality switching (percent of expected packets).
const (
	lossDegrade = 1 // lose more than this: step quality down
	lossUpgrade = 0 // perfectly clean interval: step quality up
)

// FeedbackSource wraps a Source with a quality knob driven by client
// reports. The source degrades the payload before transmission.
type FeedbackSource struct {
	*Source
	Quality int // prims.AudioStereo16 / AudioMono16 / AudioMono8

	Downgrades int
	Upgrades   int
}

// NewFeedbackSource installs the feedback listener on the source node.
func NewFeedbackSource(src *Source) *FeedbackSource {
	fs := &FeedbackSource{Source: src, Quality: prims.AudioStereo16}
	src.Node.BindUDP(FeedbackPort, fs.onReport)
	return fs
}

// StartAdaptive emits packets at the current quality until end.
func (fs *FeedbackSource) StartAdaptive(sim *netsim.Simulator, end time.Duration) {
	var tick func()
	tick = func() {
		if fs.stopped || sim.Now() >= end {
			return
		}
		payload := fs.nextPayload()
		switch fs.Quality {
		case prims.AudioMono16:
			payload = prims.DegradeToMono16(payload)
		case prims.AudioMono8:
			payload = prims.DegradeToMono8(payload)
		}
		fs.Node.Send(netsim.NewUDP(fs.Node.Addr, fs.Group, Port, Port, payload).Own())
		sim.After(PacketInterval, tick)
	}
	sim.After(PacketInterval, tick)
}

// onReport applies a client loss report.
func (fs *FeedbackSource) onReport(pkt *netsim.Packet) {
	if len(pkt.Payload) < 1 {
		return
	}
	lossPct := int(pkt.Payload[0])
	switch {
	case lossPct > lossDegrade && fs.Quality < prims.AudioMono8:
		fs.Quality++
		fs.Downgrades++
	case lossPct <= lossUpgrade && fs.Quality > prims.AudioStereo16:
		fs.Quality--
		fs.Upgrades++
	}
}

// FeedbackClient measures loss by sequence gaps and reports to the
// source on a timer.
type FeedbackClient struct {
	Node   *netsim.Node
	Source netsim.Addr

	expected uint32 // next expected sequence number
	received int
	lost     int
	stopped  bool
}

// NewFeedbackClient taps audio traffic on the client node and starts
// the reporting timer.
func NewFeedbackClient(node *netsim.Node, source netsim.Addr, end time.Duration) *FeedbackClient {
	fc := &FeedbackClient{Node: node, Source: source}
	node.Tap(func(pkt *netsim.Packet) {
		if pkt.UDP == nil || pkt.UDP.DstPort != Port || len(pkt.Payload) < prims.AudioHeaderLen {
			return
		}
		seq := uint32(pkt.Payload[1])<<24 | uint32(pkt.Payload[2])<<16 | uint32(pkt.Payload[3])<<8 | uint32(pkt.Payload[4])
		if fc.expected != 0 && seq > fc.expected {
			fc.lost += int(seq - fc.expected)
		}
		fc.expected = seq + 1
		fc.received++
	})
	sim := node.Sim()
	var report func()
	report = func() {
		if fc.stopped || sim.Now() >= end {
			return
		}
		fc.sendReport()
		sim.After(FeedbackInterval, report)
	}
	sim.After(FeedbackInterval, report)
	return fc
}

func (fc *FeedbackClient) sendReport() {
	total := fc.received + fc.lost
	pct := 0
	if total > 0 {
		pct = fc.lost * 100 / total
	}
	if pct > 255 {
		pct = 255
	}
	fc.received, fc.lost = 0, 0
	fc.Node.Send(netsim.NewUDP(fc.Node.Addr, fc.Source, FeedbackPort, FeedbackPort, []byte{byte(pct)}).Own())
}

// Stop halts reporting.
func (fc *FeedbackClient) Stop() { fc.stopped = true }

// LocusResult compares adaptation reaction for one mechanism.
type LocusResult struct {
	Mechanism string
	// ReactionTime is the delay between the load step and the first
	// degraded packet observed at the client.
	ReactionTime time.Duration
	// GapsDuringTransition counts playback gaps in the 30 s after the
	// load step.
	GapsDuringTransition int
	// DropsDuringTransition counts segment drops in the same window.
	DropsDuringTransition int64
}

// RunLocus measures reaction to a heavy load step at stepAt for either
// the in-router ASP ("router") or end-to-end feedback ("feedback").
// opts.Adaptation is chosen by the mechanism and ignored if set; the
// remaining fields (Seed, Engine, Shards) pass through to the testbed.
func RunLocus(mechanism string, opts Options) (*LocusResult, error) {
	const (
		stepAt = 30 * time.Second
		end    = 60 * time.Second
	)
	opts.Adaptation = AdaptNone
	if mechanism == "router" {
		opts.Adaptation = AdaptASP
	}
	tb, err := NewTestbed(opts)
	if err != nil {
		return nil, err
	}

	// Observe the first non-stereo packet at the client after the step.
	var firstDegraded time.Duration
	tb.Sim.At(0, func() {
		tb.Client.Node.Tap(func(pkt *netsim.Packet) {
			if firstDegraded != 0 || pkt.UDP == nil || pkt.UDP.DstPort != Port {
				return
			}
			if len(pkt.Payload) > 0 && pkt.Payload[0] != prims.AudioStereo16 && tb.Sim.Now() >= stepAt {
				firstDegraded = tb.Sim.Now()
			}
		})
	})

	gen := &FeedbackLoadStep{Node: tb.LoadGen, Dst: tb.SinkAddr(), At: stepAt, Bps: 10_200_000}
	gen.Start(tb.Sim, end)

	var dropsAtStep int64
	tb.Sim.At(stepAt, func() { dropsAtStep = tb.Segment.Dropped() })

	if mechanism == "feedback" {
		// The feedback architecture still needs the client-side
		// restoration so the unmodified player accepts degraded
		// packets; only the adaptation locus moves to the end points.
		if _, err := planprt.Download(tb.Client.Node, asp.AudioClient, planprt.Config{}); err != nil {
			return nil, err
		}
		fsrc := NewFeedbackSource(tb.Source)
		fsrc.StartAdaptive(tb.Sim, end)
		NewFeedbackClient(tb.Client.Node, tb.Source.Node.Addr, end)
	} else {
		tb.Source.Start(tb.Sim, end)
	}
	tb.Sim.RunUntil(end)
	tb.Client.Finish(end)

	res := &LocusResult{Mechanism: mechanism}
	if firstDegraded > 0 {
		res.ReactionTime = firstDegraded - stepAt
	}
	res.GapsDuringTransition = tb.Client.Gaps.Gaps()
	res.DropsDuringTransition = tb.Segment.Dropped() - dropsAtStep
	return res, nil
}

// FeedbackLoadStep is a single-step CBR load generator (avoids pulling
// loadgen into this package's public surface for one use).
type FeedbackLoadStep struct {
	Node *netsim.Node
	Dst  netsim.Addr
	At   time.Duration
	Bps  int64
}

// Start schedules the step until end.
func (g *FeedbackLoadStep) Start(sim *netsim.Simulator, end time.Duration) {
	const payload = 1000
	wire := int64(payload + netsim.IPHeaderLen + netsim.UDPHeaderLen)
	interval := time.Duration(wire * 8 * int64(time.Second) / g.Bps)
	for at := g.At; at < end; at += interval {
		t := at
		sim.At(t, func() {
			g.Node.Send(netsim.NewUDP(g.Node.Addr, g.Dst, 40000, 40000, make([]byte, payload)).Own())
		})
	}
}
