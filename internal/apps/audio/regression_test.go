package audio

import (
	"testing"
	"time"

	"planp.dev/planp/internal/lang/prims"
	"planp.dev/planp/internal/netsim"
	"planp.dev/planp/internal/netsim/loadgen"
	"planp.dev/planp/internal/obs"
)

// TestFigure6SeriesUnchangedByRegistryBackend pins the figure-6 series
// against the observability refactor: the registry-backed meter
// (MeterAudio recording into the simulation's metrics registry) must
// produce byte-identical output to an independent reference tap that
// accumulates the same windowed on-wire rate with plain local state —
// the way the pre-registry implementation did.
func TestFigure6SeriesUnchangedByRegistryBackend(t *testing.T) {
	tb, err := NewTestbed(Options{Adaptation: AdaptASP})
	if err != nil {
		t.Fatal(err)
	}

	// Reference meter: same windowing logic, no registry involved.
	ref := &obs.Series{Name: WireSeriesName}
	var bits int64
	var windowStart time.Duration
	const window = time.Second
	clientNode := tb.Client.Node
	clientNode.Tap(func(pkt *netsim.Packet) {
		if pkt.UDP == nil || pkt.UDP.DstPort != Port {
			return
		}
		now := clientNode.Sim().Now()
		for now-windowStart >= window {
			ref.Add(windowStart+window, float64(bits)/window.Seconds())
			windowStart += window
			bits = 0
		}
		bits += int64(len(pkt.Payload)-prims.AudioHeaderLen) * 8
	})

	// A compressed figure-6 load timeline: quiet, heavy, light.
	const end = 30 * time.Second
	gen := &loadgen.Generator{
		Node: tb.LoadGen, Dst: tb.SinkAddr(), DstPort: 40000,
		Steps: []loadgen.Step{
			{At: 0, Bps: 0},
			{At: 10 * time.Second, Bps: 9_300_000},
			{At: 20 * time.Second, Bps: 5_500_000},
		},
	}
	gen.Start(tb.Sim, end)
	tb.Source.Start(tb.Sim, end)
	tb.Sim.RunUntil(end)

	got := tb.Wire.Render(2 * time.Second)
	want := ref.Render(2 * time.Second)
	if got != want {
		t.Errorf("registry-backed series diverged from reference:\n--- registry\n%s--- reference\n%s", got, want)
	}
	if tb.Wire.Len() == 0 {
		t.Fatal("wire series is empty — meter not recording")
	}

	// The series must be reachable through the registry by name, and be
	// the same object the testbed exposes.
	if s := tb.Sim.Metrics().LookupSeries(WireSeriesName); s != tb.Wire {
		t.Error("registry lookup did not return the testbed's wire series")
	}

	// Sanity: adaptation actually happened (full quality early, degraded
	// under heavy load), so the pin covers a nontrivial curve.
	if early := tb.Wire.Mean(2*time.Second, 10*time.Second); early < 150_000 {
		t.Errorf("early-phase rate %.0f b/s, expected near 176 kb/s", early)
	}
	if heavy := tb.Wire.Mean(14*time.Second, 20*time.Second); heavy > 120_000 {
		t.Errorf("heavy-phase rate %.0f b/s, expected degraded below 120 kb/s", heavy)
	}
}
