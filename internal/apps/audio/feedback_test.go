package audio

import (
	"testing"
	"time"

	"planp.dev/planp/internal/lang/prims"
	"planp.dev/planp/internal/netsim"
)

func TestFeedbackSourceAdjustsQuality(t *testing.T) {
	sim := netsim.NewSimulator(1)
	src := netsim.NewNode(sim, "src", netsim.MustAddr("10.0.0.1"))
	peer := netsim.NewNode(sim, "peer", netsim.MustAddr("10.0.0.2"))
	l := netsim.Connect(sim, src, peer, netsim.LinkConfig{Bandwidth: 10_000_000})
	src.SetDefaultRoute(l.Ifaces()[0])
	peer.SetDefaultRoute(l.Ifaces()[1])

	fs := NewFeedbackSource(&Source{Node: src, Group: netsim.MustAddr("224.1.1.1")})
	if fs.Quality != prims.AudioStereo16 {
		t.Fatal("initial quality should be full")
	}
	report := func(pct byte) {
		peer.Send(netsim.NewUDP(peer.Addr, src.Addr, FeedbackPort, FeedbackPort, []byte{pct}))
		sim.Run()
	}
	report(10) // heavy loss: degrade
	if fs.Quality != prims.AudioMono16 || fs.Downgrades != 1 {
		t.Errorf("after loss: quality=%d downgrades=%d", fs.Quality, fs.Downgrades)
	}
	report(50)
	if fs.Quality != prims.AudioMono8 {
		t.Errorf("second loss report should reach mono8, got %d", fs.Quality)
	}
	report(50) // already at the floor
	if fs.Quality != prims.AudioMono8 {
		t.Error("quality must not pass the floor")
	}
	report(0) // clean interval: upgrade one step
	if fs.Quality != prims.AudioMono16 || fs.Upgrades != 1 {
		t.Errorf("after clean interval: quality=%d upgrades=%d", fs.Quality, fs.Upgrades)
	}
	report(0)
	report(0) // already at the ceiling
	if fs.Quality != prims.AudioStereo16 {
		t.Errorf("quality should recover to stereo, got %d", fs.Quality)
	}
}

func TestFeedbackClientLossAccounting(t *testing.T) {
	sim := netsim.NewSimulator(1)
	cl := netsim.NewNode(sim, "cl", netsim.MustAddr("10.0.0.1"))
	srcNode := netsim.NewNode(sim, "src", netsim.MustAddr("10.0.0.2"))
	l := netsim.Connect(sim, cl, srcNode, netsim.LinkConfig{Bandwidth: 10_000_000})
	cl.SetDefaultRoute(l.Ifaces()[0])
	srcNode.SetDefaultRoute(l.Ifaces()[1])

	var reports []byte
	srcNode.BindUDP(FeedbackPort, func(p *netsim.Packet) {
		reports = append(reports, p.Payload[0])
	})
	NewFeedbackClient(cl, srcNode.Addr, 10*time.Second)

	// Inject audio packets with sequence gaps directly at the client:
	// seqs 1,2,5,6 -> 2 lost out of 6 expected (33%).
	mk := func(seq uint32) *netsim.Packet {
		b := make([]byte, prims.AudioHeaderLen+4)
		b[0] = prims.AudioMono8
		b[1], b[2], b[3], b[4] = byte(seq>>24), byte(seq>>16), byte(seq>>8), byte(seq)
		return netsim.NewUDP(srcNode.Addr, cl.Addr, Port, Port, b)
	}
	for _, seq := range []uint32{1, 2, 5, 6} {
		cl.Receive(mk(seq), nil)
	}
	sim.RunUntil(FeedbackInterval + time.Second)
	if len(reports) == 0 {
		t.Fatal("no feedback report sent")
	}
	if reports[0] != 33 {
		t.Errorf("reported loss %d%%, want 33%%", reports[0])
	}
}

func TestRunLocusRouterFasterThanFeedback(t *testing.T) {
	if testing.Short() {
		t.Skip("two 60 s virtual runs")
	}
	router, err := RunLocus("router", Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	feedback, err := RunLocus("feedback", Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if router.ReactionTime == 0 {
		t.Fatal("router never reacted")
	}
	if feedback.ReactionTime == 0 {
		t.Fatal("feedback never reacted")
	}
	if router.ReactionTime > 500*time.Millisecond {
		t.Errorf("router reaction %v, want within ~2 meter windows", router.ReactionTime)
	}
	if feedback.ReactionTime < 4*router.ReactionTime {
		t.Errorf("feedback (%v) should react much slower than the router (%v)",
			feedback.ReactionTime, router.ReactionTime)
	}
}
