package audio

import (
	"sync"
	"testing"
	"time"

	"planp.dev/planp/asp"
	"planp.dev/planp/internal/lang/prims"
	"planp.dev/planp/internal/planprt"
	"planp.dev/planp/internal/rtnet"
	"planp.dev/planp/internal/substrate"
)

// TestAudioAdaptationOnRTNet is the §3.1 experiment ported to the
// real-time backend as a wall-clock smoke test: the audio router ASP,
// downloaded onto a LIVE router with concurrent goroutine-per-node
// traffic, must degrade audio on a congested segment and leave it
// untouched on an uncongested one — the same adaptation the simulator
// experiment measures, now against real clocks and real concurrency.
//
// Topology (built with the same line helper the substrate conformance
// suite uses, plus one extra thin segment):
//
//	source ──100 Mb/s── router ──100 Mb/s── clientB   (uncongested)
//	                       │
//	                    2 Mb/s
//	                       │
//	                    clientA                        (congested)
//
// The source unicasts 16-bit stereo to both clients fast enough that
// the thin segment's measured utilization crosses the ASP's 50%/80%
// thresholds; the fat segment stays in single-digit utilization.
func TestAudioAdaptationOnRTNet(t *testing.T) {
	nw := rtnet.New(1)
	defer nw.Close()

	line, err := rtnet.Line(nw, []rtnet.LineHost{
		{Name: "source", Addr: substrate.MustAddr("10.0.3.1")},
		{Name: "router", Addr: substrate.MustAddr("10.0.3.2"), Forwarding: true},
		{Name: "clientB", Addr: substrate.MustAddr("10.0.3.3")},
	}, 100_000_000, false)
	if err != nil {
		t.Fatal(err)
	}
	source, router, clientB := line[0], line[1], line[2]

	// The congested branch: a thin link off the router.
	clientA := rtnet.NewNode(nw, "clientA", substrate.MustAddr("10.0.3.4"))
	toA, fromA := rtnet.NewLink(nw, router, clientA, 2_000_000)
	router.AddRoute(clientA.Address(), toA)
	clientA.SetDefaultRoute(fromA)

	// Count delivered packets per audio format at each client.
	var mu sync.Mutex
	formats := map[string]map[byte]int{"A": {}, "B": {}}
	count := func(client string) substrate.AppFunc {
		return func(pkt *substrate.Packet) {
			if len(pkt.Payload) < prims.AudioHeaderLen {
				return
			}
			mu.Lock()
			formats[client][pkt.Payload[0]]++
			mu.Unlock()
		}
	}
	clientA.BindUDP(Port, count("A"))
	clientB.BindUDP(Port, count("B"))

	nw.Start()

	// Download the adaptation protocol onto the running router.
	rt, err := planprt.Download(router, asp.AudioRouter, planprt.Config{})
	if err != nil {
		t.Fatalf("downloading audio router ASP: %v", err)
	}
	defer rt.Uninstall()

	// One packet of 16-bit stereo is ~9 kb on the wire; at 2 ms spacing
	// the stream toward clientA runs ~4.5 Mb/s nominal — far over the
	// thin link's 80% threshold once the rate meter's window fills —
	// while clientB's copy uses <5% of its fat segment.
	payload := make([]byte, prims.AudioHeaderLen+FramesPerPacket*4)
	payload[0] = prims.AudioStereo16
	const packets = 150
	for i := 0; i < packets; i++ {
		for _, dst := range []*rtnet.Node{clientA, clientB} {
			pkt := substrate.NewUDP(source.Address(), dst.Address(), Port, Port,
				append([]byte(nil), payload...))
			source.Send(pkt.Own())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !nw.Quiesce(10 * time.Second) {
		t.Fatal("network did not quiesce")
	}

	mu.Lock()
	defer mu.Unlock()
	a, b := formats["A"], formats["B"]
	totalA := a[prims.AudioStereo16] + a[prims.AudioMono16] + a[prims.AudioMono8]
	totalB := b[prims.AudioStereo16] + b[prims.AudioMono16] + b[prims.AudioMono8]
	t.Logf("clientA formats: stereo16=%d mono16=%d mono8=%d; clientB: stereo16=%d mono16=%d mono8=%d",
		a[prims.AudioStereo16], a[prims.AudioMono16], a[prims.AudioMono8],
		b[prims.AudioStereo16], b[prims.AudioMono16], b[prims.AudioMono8])

	// Both clients keep receiving audio (adaptation, not starvation).
	if totalA < packets/2 || totalB < packets/2 {
		t.Fatalf("delivery collapsed: clientA got %d, clientB got %d of %d", totalA, totalB, packets)
	}
	// The congested branch saw degradation. Wall clocks make the exact
	// mix timing-dependent, so assert the direction, not the counts.
	if degraded := a[prims.AudioMono16] + a[prims.AudioMono8]; degraded == 0 {
		t.Error("no degraded packets on the congested branch — the router ASP never adapted")
	}
	// The uncongested branch was left alone: full-quality stereo only.
	if b[prims.AudioMono16]+b[prims.AudioMono8] != 0 {
		t.Errorf("uncongested branch was degraded: %v", b)
	}
	if b[prims.AudioStereo16] == 0 {
		t.Error("uncongested branch received no full-quality audio")
	}
}
