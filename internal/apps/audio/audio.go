// Package audio implements the §3.1 experiment: an audio broadcasting
// application (multicast PCM source + playout client), the figure-5
// topology, the PLAN-P adaptation protocol downloads, and a native Go
// baseline router for comparison.
//
// The source broadcasts CD-style PCM at the paper's rates: 16-bit
// stereo = 176 kb/s of audio payload, degrading to 88 kb/s (16-bit
// mono) and 44 kb/s (8-bit mono).
package audio

import (
	"math"
	"time"

	"planp.dev/planp/internal/lang/prims"
	"planp.dev/planp/internal/netsim"
	"planp.dev/planp/internal/obs"
	"planp.dev/planp/internal/substrate"
)

// Port is the UDP port audio traffic uses (matches asp/audio_router.planp).
const Port = 5004

// PacketInterval is the packetization period.
const PacketInterval = 50 * time.Millisecond

// FramesPerPacket gives 176 kb/s of 16-bit stereo payload at the packet
// interval: 176000 b/s * 0.05 s / (32 bits per stereo frame) = 275.
const FramesPerPacket = 275

// Source broadcasts a deterministic PCM signal to a multicast group.
type Source struct {
	Node  *netsim.Node
	Group netsim.Addr

	// Sent counts packets emitted — the robustness experiments bound
	// client-side receipt by Sent plus injected duplicates.
	Sent int

	seq     uint32
	phase   float64
	stopped bool
}

// Start schedules packet emission until end.
func (s *Source) Start(sim *netsim.Simulator, end time.Duration) {
	var tick func()
	tick = func() {
		if s.stopped || sim.Now() >= end {
			return
		}
		s.Node.Send(netsim.NewUDP(s.Node.Addr, s.Group, Port, Port, s.nextPayload()).Own())
		s.Sent++
		sim.After(PacketInterval, tick)
	}
	sim.After(PacketInterval, tick)
}

// Stop halts emission.
func (s *Source) Stop() { s.stopped = true }

// nextPayload synthesizes one packet of 16-bit stereo PCM: a stereo
// sine pair (different frequencies per channel so downmixing is
// observable in tests).
func (s *Source) nextPayload() []byte {
	s.seq++
	buf := make([]byte, prims.AudioHeaderLen+FramesPerPacket*4)
	buf[0] = prims.AudioStereo16
	buf[1], buf[2], buf[3], buf[4] = byte(s.seq>>24), byte(s.seq>>16), byte(s.seq>>8), byte(s.seq)
	for f := 0; f < FramesPerPacket; f++ {
		s.phase += 2 * math.Pi * 440 / 5500
		l := int16(20000 * math.Sin(s.phase))
		r := int16(20000 * math.Sin(s.phase*1.5))
		o := prims.AudioHeaderLen + f*4
		buf[o], buf[o+1] = byte(uint16(l)>>8), byte(uint16(l))
		buf[o+2], buf[o+3] = byte(uint16(r)>>8), byte(uint16(r))
	}
	return buf
}

// Client is the unmodified audio application: it joins the group, plays
// 16-bit stereo packets, and records playback gaps. Packets in any
// other format are unplayable (the application was never taught about
// degradation — that is the client ASP's job).
type Client struct {
	Node *netsim.Node

	// Gaps detects long stalls (no playable audio for several packet
	// intervals).
	Gaps       *obs.GapDetector
	Unplayable int    // packets whose format the app cannot decode
	ByFormat   [4]int // packet counts indexed by format tag

	// SilentPeriods counts audible dropouts: each run of consecutive
	// lost packets (sequence discontinuity) is one silent period in
	// playback — the y-axis of figure 7. LostPackets is the total
	// missing.
	SilentPeriods int
	LostPackets   int
	expectSeq     uint32
}

// NewClient binds the client app on node and joins group.
func NewClient(node *netsim.Node, group netsim.Addr) *Client {
	c := &Client{
		Node: node,
		Gaps: obs.NewGapDetector(3 * PacketInterval),
	}
	node.JoinGroup(group)
	node.BindUDP(Port, c.onPacket)
	return c
}

func (c *Client) onPacket(pkt *netsim.Packet) {
	payload := pkt.Payload
	if len(payload) < prims.AudioHeaderLen {
		c.Unplayable++
		return
	}
	format := int(payload[0])
	if format >= 1 && format <= 3 {
		c.ByFormat[format]++
	}
	seq := uint32(payload[1])<<24 | uint32(payload[2])<<16 | uint32(payload[3])<<8 | uint32(payload[4])
	if c.expectSeq != 0 && seq > c.expectSeq {
		c.SilentPeriods++
		c.LostPackets += int(seq - c.expectSeq)
	}
	c.expectSeq = seq + 1
	if format != prims.AudioStereo16 {
		// The unmodified player only decodes its native format.
		c.Unplayable++
		return
	}
	c.Gaps.Packet(c.Node.Sim().Now())
}

// Finish flushes measurement state at the end of a run.
func (c *Client) Finish(end time.Duration) { c.Gaps.Finish(end) }

// WireSeriesName is the registry name of the figure-6 series MeterAudio
// records (the on-wire audio data rate at the client).
const WireSeriesName = "audio-wire-bps"

// wireMeter accumulates audio payload bits per one-second window.
type wireMeter struct {
	series      *obs.Series
	window      time.Duration
	windowBits  int64
	windowStart time.Duration
}

// MeterAudio installs a tap on node measuring the on-wire audio data
// rate as packets arrive, BEFORE any client ASP restores them — the
// y-axis of figure 6 (176/88/44 kb/s per quality level), windowed per
// second. The series is registered in the simulation's metrics registry
// under WireSeriesName, so any reader holding the registry sees it.
func MeterAudio(node *netsim.Node) *obs.Series {
	m := &wireMeter{series: node.Sim().Metrics().Series(WireSeriesName), window: time.Second}
	node.Tap(func(pkt *netsim.Packet) {
		if pkt.UDP == nil || pkt.UDP.DstPort != Port {
			return
		}
		now := node.Sim().Now()
		for now-m.windowStart >= m.window {
			m.series.Add(m.windowStart+m.window, float64(m.windowBits)/m.window.Seconds())
			m.windowStart += m.window
			m.windowBits = 0
		}
		m.windowBits += int64(len(pkt.Payload)-prims.AudioHeaderLen) * 8
	})
	return m.series
}

// ---------------------------------------------------------------------------
// Native baseline router (the "built-in C" comparator)

// NativeAdapter is the audio-adaptation protocol hand-written in Go and
// installed as the router's packet processor: the baseline the paper
// compares PLAN-P against. Thresholds mirror asp/audio_router.planp.
type NativeAdapter struct {
	node substrate.Node

	Processed int64
}

// InstallNative installs the native adaptation on a router node.
func InstallNative(node substrate.Node) *NativeAdapter {
	a := &NativeAdapter{node: node}
	node.SetProcessor(a)
	return a
}

// Process implements substrate.Processor.
func (a *NativeAdapter) Process(pkt *substrate.Packet, in substrate.Iface) bool {
	if pkt.UDP == nil {
		return false
	}
	if pkt.UDP.DstPort != Port {
		// Forward other UDP traffic unchanged (same behavior as the
		// ASP's else branch).
		out := pkt.Clone()
		if out.IP.TTL <= 1 {
			return true
		}
		out.IP.TTL--
		a.node.TransmitFrom(out, in)
		return true
	}
	ifc := a.node.Route(pkt.IP.Dst)
	load := int64(0)
	if ifc != nil {
		load = ifc.Load()
	}
	out := pkt.Clone()
	switch {
	case load > 80:
		out.Payload = prims.DegradeToMono8(out.Payload)
	case load > 50:
		out.Payload = prims.DegradeToMono16(out.Payload)
	}
	if out.IP.TTL <= 1 {
		return true
	}
	out.IP.TTL--
	a.Processed++
	a.node.TransmitFrom(out, in)
	return true
}

var _ substrate.Processor = (*NativeAdapter)(nil)
