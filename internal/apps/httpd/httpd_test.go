package httpd

import (
	"testing"
	"time"

	"planp.dev/planp/internal/netsim"
	"planp.dev/planp/internal/planprt"
)

func TestTraceShape(t *testing.T) {
	tr := NewTrace(DefaultTraceConfig())
	if len(tr.Entries) != 80000 {
		t.Fatalf("trace has %d accesses, want 80000", len(tr.Entries))
	}
	mean := tr.MeanSize()
	if mean < 3000 || mean > 12000 {
		t.Errorf("mean size = %.0f, want a few KB", mean)
	}
	// Zipf: the most popular document must dominate.
	counts := map[int]int{}
	for _, e := range tr.Entries {
		counts[e.Doc]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < len(tr.Entries)/20 {
		t.Errorf("most popular doc has %d accesses; expected a Zipf head", max)
	}
	// Determinism.
	tr2 := NewTrace(DefaultTraceConfig())
	for i := range tr.Entries {
		if tr.Entries[i] != tr2.Entries[i] {
			t.Fatal("trace generation is not deterministic")
		}
	}
	// Cycling.
	first := tr.Next()
	for i := 1; i < len(tr.Entries); i++ {
		tr.Next()
	}
	if got := tr.Next(); got != first {
		t.Error("trace does not cycle back to the start")
	}
}

func TestSingleServerServes(t *testing.T) {
	tb, err := NewTestbed(Config{Variant: VariantSingle})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace(TraceConfig{Accesses: 1000, Documents: 100, ZipfS: 1.2, MeanSize: 6000, Seed: 3})
	c := NewClient(tb.Clients[0], Server0Addr, 50, tr)
	c.Start(5*time.Second, time.Second)
	tb.Sim.RunUntil(6 * time.Second)
	if c.Completed < 200 {
		t.Errorf("completed %d requests at 50 rps over 5s; want ~250", c.Completed)
	}
	if c.MeanLatency() > 200*time.Millisecond {
		t.Errorf("uncontended latency %v too high", c.MeanLatency())
	}
	if tb.ServerB.Served != 0 {
		t.Errorf("single-server variant used server B (%d)", tb.ServerB.Served)
	}
}

func TestGatewayBalances(t *testing.T) {
	for _, variant := range []Variant{VariantASPGW, VariantNativeGW} {
		t.Run(variant.String(), func(t *testing.T) {
			tb, err := NewTestbed(Config{Variant: variant})
			if err != nil {
				t.Fatal(err)
			}
			tr := NewTrace(TraceConfig{Accesses: 1000, Documents: 100, ZipfS: 1.2, MeanSize: 6000, Seed: 3})
			c := NewClient(tb.Clients[0], VirtualAddr, 100, tr)
			c.Start(5*time.Second, time.Second)
			tb.Sim.RunUntil(6 * time.Second)
			if c.Completed < 300 {
				t.Fatalf("completed %d via gateway, want ~450", c.Completed)
			}
			a, b := tb.ServerA.Served, tb.ServerB.Served
			if a == 0 || b == 0 {
				t.Errorf("load not balanced: A=%d B=%d", a, b)
			}
			ratio := float64(a) / float64(a+b)
			if ratio < 0.4 || ratio > 0.6 {
				t.Errorf("modulo policy should split evenly, got A=%d B=%d", a, b)
			}
		})
	}
}

func TestSaturationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("long virtual runs")
	}
	sat := map[Variant]float64{}
	for _, v := range []Variant{VariantSingle, VariantASPGW, VariantNativeGW, VariantDisjoint} {
		s, err := Saturation(Config{Variant: v}, 20*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		sat[v] = s
	}
	single, aspGW, natGW, disjoint := sat[VariantSingle], sat[VariantASPGW], sat[VariantNativeGW], sat[VariantDisjoint]
	t.Logf("saturation: single=%.0f asp=%.0f native=%.0f disjoint=%.0f", single, aspGW, natGW, disjoint)

	// Paper claims: (1) ASP == built-in C gateway.
	if d := aspGW/natGW - 1; d < -0.05 || d > 0.05 {
		t.Errorf("ASP (%.0f) vs native (%.0f) gateway differ by more than 5%%", aspGW, natGW)
	}
	// (2) Cluster serves ~1.75x a single server.
	if r := aspGW / single; r < 1.5 || r > 1.95 {
		t.Errorf("cluster/single = %.2f, want ~1.75", r)
	}
	// (3) Gateway reaches ~85% of two servers with disjoint clients.
	if r := aspGW / disjoint; r < 0.72 || r > 0.95 {
		t.Errorf("cluster/disjoint = %.2f, want ~0.85", r)
	}
	// (4) Disjoint clients double the single server.
	if r := disjoint / single; r < 1.8 || r > 2.2 {
		t.Errorf("disjoint/single = %.2f, want ~2", r)
	}
}

func TestInterpreterGatewaySlower(t *testing.T) {
	if testing.Short() {
		t.Skip("long virtual runs")
	}
	jit, err := Saturation(Config{Variant: VariantASPGW, Engine: planprt.EngineJIT}, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	interp, err := Saturation(Config{Variant: VariantASPGW, Engine: planprt.EngineInterp}, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if interp >= jit {
		t.Errorf("interpreted gateway (%.0f) should saturate below the JIT gateway (%.0f)", interp, jit)
	}
}

func TestResponsesCarryVirtualAddress(t *testing.T) {
	tb, err := NewTestbed(Config{Variant: VariantASPGW})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace(TraceConfig{Accesses: 10, Documents: 5, ZipfS: 1.2, MeanSize: 2000, Seed: 9})
	c := NewClient(tb.Clients[0], VirtualAddr, 10, tr)
	sawPhysical := false
	tb.Clients[0].Tap(func(pkt *netsim.Packet) {
		if pkt.TCP != nil && pkt.TCP.SrcPort == HTTPPort &&
			(pkt.IP.Src == Server0Addr || pkt.IP.Src == Server1Addr) {
			sawPhysical = true
		}
	})
	c.Start(2*time.Second, 0)
	tb.Sim.RunUntil(3 * time.Second)
	if c.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if sawPhysical {
		t.Error("client saw a physical server address; the gateway must restore the virtual address")
	}
}
