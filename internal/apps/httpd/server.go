// Package httpd implements the §3.2 experiment: a simulated HTTP server
// farm (the Apache stand-in), trace-replaying clients, the PLAN-P
// gateway download, a native Go gateway baseline, and the figure-8
// offered-load sweep.
package httpd

import (
	"time"

	"planp.dev/planp/internal/netsim"
)

// HTTPPort is the service port.
const HTTPPort = 80

// MTU is the data-packet payload size responses are chunked into.
const MTU = 1400

// Server simulates an Apache instance: a bounded worker pool with a
// per-request service time (base CPU + per-byte cost), replaying the
// queueing behavior that makes a single machine saturate.
type Server struct {
	Node    *netsim.Node
	Workers int           // paper: 5-10 Apache children
	BaseCPU time.Duration // fixed cost per request
	PerByte time.Duration // additional cost per response byte

	queue     []*netsim.Packet
	busy      int
	failed    bool
	Served    int64
	SentBytes int64
	QueueMax  int
}

// Fail simulates a machine crash: the server stops answering (requests
// already in service are lost too). Used by the failover experiment.
func (s *Server) Fail() {
	s.failed = true
	s.queue = nil
}

// Recover brings a failed server back.
func (s *Server) Recover() { s.failed = false }

// ServerConfig holds tunables; zero values take defaults calibrated so
// one server saturates around 300 requests/s (a late-90s Apache on an
// Ultra-1 against a mixed trace).
type ServerConfig struct {
	Workers int
	BaseCPU time.Duration
	PerByte time.Duration
}

func (c *ServerConfig) fill() {
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.BaseCPU == 0 {
		c.BaseCPU = 20 * time.Millisecond
	}
	if c.PerByte == 0 {
		c.PerByte = 700 * time.Nanosecond
	}
}

// NewServer binds a server app on node.
func NewServer(node *netsim.Node, cfg ServerConfig) *Server {
	cfg.fill()
	s := &Server{Node: node, Workers: cfg.Workers, BaseCPU: cfg.BaseCPU, PerByte: cfg.PerByte}
	node.BindTCP(HTTPPort, s.onRequest)
	return s
}

// onRequest queues an incoming request packet.
func (s *Server) onRequest(pkt *netsim.Packet) {
	if s.failed {
		return // crashed machines answer nothing
	}
	if pkt.TCP == nil || pkt.TCP.Flags&netsim.FlagSyn == 0 {
		return // only request packets start work
	}
	if s.busy < s.Workers {
		s.serve(pkt)
		return
	}
	s.queue = append(s.queue, pkt)
	if len(s.queue) > s.QueueMax {
		s.QueueMax = len(s.queue)
	}
}

// serve runs one request to completion after its service time.
func (s *Server) serve(req *netsim.Packet) {
	s.busy++
	size := requestedSize(req)
	st := s.BaseCPU + time.Duration(size)*s.PerByte
	// Add ±20% deterministic jitter from the simulation RNG so workers
	// don't complete in lockstep.
	jitter := time.Duration(float64(st) * 0.2 * (s.Node.Sim().Rand().Float64()*2 - 1))
	s.Node.Sim().After(st+jitter, func() {
		s.busy--
		if s.failed {
			return // the response dies with the machine
		}
		s.respond(req, size)
		if len(s.queue) > 0 {
			next := s.queue[0]
			s.queue = s.queue[:copy(s.queue, s.queue[1:])]
			s.serve(next)
		}
	})
}

// respond streams the response back: full MTU chunks, the last one
// flagged FIN so the client can count completion.
func (s *Server) respond(req *netsim.Packet, size int) {
	s.Served++
	s.SentBytes += int64(size)
	seq := uint32(0)
	for sent := 0; sent < size; {
		chunk := size - sent
		if chunk > MTU {
			chunk = MTU
		}
		sent += chunk
		flags := uint8(netsim.FlagAck)
		if sent >= size {
			flags |= netsim.FlagFin
		}
		resp := netsim.NewTCP(s.Node.Addr, req.IP.Src, HTTPPort, req.TCP.SrcPort, seq, flags, make([]byte, chunk))
		seq++
		s.Node.Send(resp.Own())
	}
}

// requestedSize decodes the response size a request asks for (the trace
// entry's size travels in the request payload: 4 bytes big-endian).
func requestedSize(req *netsim.Packet) int {
	b := req.Payload
	if len(b) < 4 {
		return 1024
	}
	return int(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
}

// encodeRequest builds a request payload asking for size bytes.
func encodeRequest(size int) []byte {
	return []byte{byte(size >> 24), byte(size >> 16), byte(size >> 8), byte(size)}
}
