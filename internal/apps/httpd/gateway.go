// The native ("built-in C") gateway: the same load-balancing behavior as
// asp/http_gateway.planp, hand-written in Go against the abstract
// substrate API — like the ASP, it runs unchanged on the simulator or a
// real-time backend. Figure 8's curve b; the ASP gateway is curve c.
package httpd

import (
	"time"

	"planp.dev/planp/internal/netsim"
	"planp.dev/planp/internal/substrate"
)

// Cluster addressing, shared with asp/http_gateway.planp.
var (
	VirtualAddr = netsim.MustAddr("10.0.0.100")
	Server0Addr = netsim.MustAddr("10.0.0.81")
	Server1Addr = netsim.MustAddr("10.0.0.109")
)

// GatewayCPU is the gateway's per-packet processing cost with the
// compiled engines (JIT or native — the paper's headline result is that
// these are equal). Calibrated so the gateway saturates near 1.75x a
// single server's throughput, the operating point figure 8 reports.
const GatewayCPU = 272 * time.Microsecond

// EngineCPUFactor scales GatewayCPU for the engine ablation: the
// interpreter pays AST-walking dispatch on every packet, the bytecode VM
// an instruction loop. Ratios follow the measured per-packet engine
// microbenchmarks (see bench_test.go).
func EngineCPUFactor(engine string) time.Duration {
	switch engine {
	case "interp":
		return 8 * GatewayCPU
	case "bytecode":
		return 3 * GatewayCPU
	default: // jit, native
		return GatewayCPU
	}
}

// connKey identifies a client connection.
type connKey struct {
	src  substrate.Addr
	port uint16
}

// NativeGateway is the hand-written load balancer.
type NativeGateway struct {
	node  substrate.Node
	conns map[connKey]substrate.Addr
	count int64

	Requests  int64
	Responses int64
}

var _ substrate.Processor = (*NativeGateway)(nil)

// InstallNativeGateway installs the baseline on a node.
func InstallNativeGateway(node substrate.Node) *NativeGateway {
	g := &NativeGateway{node: node, conns: map[connKey]substrate.Addr{}}
	node.SetProcessor(g)
	return g
}

// Process implements the request/response rewriting of §3.2.
func (g *NativeGateway) Process(pkt *substrate.Packet, in substrate.Iface) bool {
	if pkt.TCP == nil {
		return false
	}
	switch {
	case pkt.IP.Dst == VirtualAddr && pkt.TCP.DstPort == HTTPPort:
		key := connKey{src: pkt.IP.Src, port: pkt.TCP.SrcPort}
		srv, ok := g.conns[key]
		if !ok {
			if g.count%2 == 0 {
				srv = Server0Addr
			} else {
				srv = Server1Addr
			}
			g.conns[key] = srv
		}
		if pkt.TCP.Flags&netsim.FlagSyn != 0 {
			g.count++
		}
		out := pkt.Clone()
		out.IP.Dst = srv
		g.Requests++
		g.forward(out, in)
		return true

	case pkt.TCP.SrcPort == HTTPPort && (pkt.IP.Src == Server0Addr || pkt.IP.Src == Server1Addr):
		out := pkt.Clone()
		out.IP.Src = VirtualAddr
		g.Responses++
		g.forward(out, in)
		return true

	default:
		out := pkt.Clone()
		g.forward(out, in)
		return true
	}
}

func (g *NativeGateway) forward(pkt *substrate.Packet, in substrate.Iface) {
	if pkt.IP.TTL <= 1 {
		return
	}
	pkt.IP.TTL--
	g.node.TransmitFrom(pkt, in)
}
