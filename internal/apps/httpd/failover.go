// Failover experiment (§5's fault-tolerance extension): server A
// crashes mid-run, the administrator marks it down with one datagram to
// the gateway, and service continues on server B — clients keep talking
// to the virtual address throughout.
package httpd

import (
	"time"

	"planp.dev/planp/asp"
	"planp.dev/planp/internal/netsim"
)

// AdminPort receives administrator reconfiguration datagrams (matches
// asp/http_gateway_failover.planp).
const AdminPort = 9999

// MarkServer sends the administrator datagram taking a server out of
// ('D') or back into ('U') rotation. from may be any host that can
// reach the gateway.
func MarkServer(from *netsim.Node, gateway netsim.Addr, server netsim.Addr, down bool) {
	tag := byte('U')
	if down {
		tag = 'D'
	}
	payload := []byte{tag,
		byte(server >> 24), byte(server >> 16), byte(server >> 8), byte(server)}
	from.Send(netsim.NewUDP(from.Addr, gateway, AdminPort, AdminPort, payload).Own())
}

// FailoverResult summarizes the failover timeline.
type FailoverResult struct {
	CompletedBefore int64 // completions before the crash
	LostDuring      int64 // requests issued in the blackout window that never completed
	CompletedAfter  int64 // completions after the admin marked A down
	ServedByA       int64
	ServedByB       int64
}

// RunFailover drives the timeline: steady load against the virtual
// address; A crashes at crashAt; the administrator reacts at adminAt;
// the run ends at end. The variant and gateway source are fixed by the
// scenario and overwritten in cfg; Engine, Seed, and Shards pass
// through to the testbed.
func RunFailover(cfg Config) (*FailoverResult, error) {
	const (
		crashAt = 8 * time.Second
		adminAt = 10 * time.Second
		end     = 20 * time.Second
		rate    = 100 // req/s, comfortably under one server's capacity
	)
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	cfg.Variant, cfg.GatewaySource = VariantASPGW, asp.HTTPGatewayFailover
	tb, err := NewTestbed(cfg)
	if err != nil {
		return nil, err
	}
	tr := NewTrace(TraceConfig{Accesses: 10000, Documents: 1000, ZipfS: 1.2, MeanSize: 6000, Seed: cfg.Seed})
	client := NewClient(tb.Clients[0], VirtualAddr, rate, tr)
	client.Start(end, 0)

	res := &FailoverResult{}
	tb.Sim.At(crashAt, func() {
		res.CompletedBefore = client.Completed
		tb.ServerA.Fail()
	})
	tb.Sim.At(adminAt, func() {
		MarkServer(tb.Clients[1], tb.Gateway.Addr, Server0Addr, true)
	})
	var completedAtAdmin int64
	tb.Sim.At(adminAt+50*time.Millisecond, func() { completedAtAdmin = client.Completed })
	tb.Sim.RunUntil(end + 2*time.Second)

	res.CompletedAfter = client.Completed - completedAtAdmin
	// Requests lost: issued during the blackout on connections stuck to
	// the dead server — whatever never completed by the end of the run.
	res.LostDuring = int64(len(client.inFlight))
	res.ServedByA = tb.ServerA.Served
	res.ServedByB = tb.ServerB.Served
	return res, nil
}
