// Trace-replaying HTTP clients: Poisson arrivals at a configured offered
// rate, one simulated connection per request, completion counted on the
// FIN packet (figure 8's y-axis).
package httpd

import (
	"time"

	"planp.dev/planp/internal/netsim"
)

// Client replays trace accesses against a target address at an offered
// request rate.
type Client struct {
	Node   *netsim.Node
	Target netsim.Addr
	Rate   float64 // offered requests per second
	Trace  *Trace

	nextPort  uint16
	inFlight  map[uint16]time.Duration // src port -> request start
	Issued    int64
	Completed int64
	Bytes     int64
	Latency   time.Duration // cumulative completion latency
	stopped   bool

	// WarmedCompleted counts completions inside the measurement window
	// [warmup, end) — excluding both warmup and the post-run drain.
	warmupAt        time.Duration
	endAt           time.Duration
	WarmedCompleted int64
}

// NewClient binds a client app on node targeting target.
func NewClient(node *netsim.Node, target netsim.Addr, rate float64, tr *Trace) *Client {
	c := &Client{
		Node: node, Target: target, Rate: rate, Trace: tr,
		nextPort: 10000, inFlight: map[uint16]time.Duration{},
	}
	node.BindRaw(c.onPacket)
	return c
}

// Start begins issuing requests until end; completions after warmup are
// counted separately for steady-state throughput.
func (c *Client) Start(end, warmup time.Duration) {
	c.warmupAt = warmup
	c.endAt = end
	sim := c.Node.Sim()
	var issue func()
	issue = func() {
		if c.stopped || sim.Now() >= end {
			return
		}
		c.request()
		gap := time.Duration(sim.Rand().ExpFloat64() / c.Rate * float64(time.Second))
		if gap <= 0 {
			gap = time.Microsecond
		}
		sim.After(gap, issue)
	}
	sim.After(time.Duration(sim.Rand().ExpFloat64()/c.Rate*float64(time.Second)), issue)
}

// Stop halts request issuance.
func (c *Client) Stop() { c.stopped = true }

func (c *Client) request() {
	entry := c.Trace.Next()
	port := c.nextPort
	c.nextPort++
	if c.nextPort < 10000 {
		c.nextPort = 10000 // wrap far from ephemeral floor
	}
	c.inFlight[port] = c.Node.Sim().Now()
	c.Issued++
	req := netsim.NewTCP(c.Node.Addr, c.Target, port, HTTPPort, 0, netsim.FlagSyn|netsim.FlagPsh, encodeRequest(entry.Size))
	c.Node.Send(req.Own())
}

// onPacket counts response data and completions.
func (c *Client) onPacket(pkt *netsim.Packet) {
	if pkt.TCP == nil || pkt.TCP.SrcPort != HTTPPort {
		return
	}
	c.Bytes += int64(len(pkt.Payload))
	if pkt.TCP.Flags&netsim.FlagFin == 0 {
		return
	}
	port := pkt.TCP.DstPort
	start, ok := c.inFlight[port]
	if !ok {
		return
	}
	delete(c.inFlight, port)
	now := c.Node.Sim().Now()
	c.Completed++
	c.Latency += now - start
	if now >= c.warmupAt && now < c.endAt {
		c.WarmedCompleted++
	}
}

// MeanLatency returns the average completion latency.
func (c *Client) MeanLatency() time.Duration {
	if c.Completed == 0 {
		return 0
	}
	return c.Latency / time.Duration(c.Completed)
}
