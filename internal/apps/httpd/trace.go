// Synthetic access trace: the stand-in for the paper's replay of 80000
// real accesses to the IRISA web server. Document popularity follows a
// Zipf law and response sizes a heavy-tailed mixture, the standard
// empirical shape of 1990s web traffic, so server work per request
// varies the way the original trace made it vary.
package httpd

import (
	"math"
	"math/rand"
)

// TraceEntry is one access: a document id and its response size.
type TraceEntry struct {
	Doc  int
	Size int // response bytes
}

// Trace is a reproducible synthetic access log.
type Trace struct {
	Entries []TraceEntry
	next    int
}

// TraceConfig parameterizes trace synthesis.
type TraceConfig struct {
	Accesses  int     // total accesses (paper: 80000)
	Documents int     // distinct documents
	ZipfS     float64 // Zipf skew (>1)
	MeanSize  int     // mean response size in bytes
	Seed      int64
}

// DefaultTraceConfig mirrors the paper's replay scale.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{Accesses: 80000, Documents: 2000, ZipfS: 1.2, MeanSize: 6000, Seed: 1}
}

// NewTrace synthesizes a trace.
func NewTrace(cfg TraceConfig) *Trace {
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Documents-1))

	// Per-document sizes: lognormal body with a floor, scaled to the
	// requested mean.
	sizes := make([]int, cfg.Documents)
	var total float64
	for i := range sizes {
		s := math.Exp(rng.NormFloat64()*1.0 + 8.0) // median ~3 KB, heavy tail
		if s < 256 {
			s = 256
		}
		if s > 200_000 {
			s = 200_000
		}
		sizes[i] = int(s)
		total += s
	}
	scale := float64(cfg.MeanSize) * float64(cfg.Documents) / total
	for i := range sizes {
		sizes[i] = int(float64(sizes[i]) * scale)
		if sizes[i] < 128 {
			sizes[i] = 128
		}
	}

	t := &Trace{Entries: make([]TraceEntry, cfg.Accesses)}
	for i := range t.Entries {
		doc := int(zipf.Uint64())
		t.Entries[i] = TraceEntry{Doc: doc, Size: sizes[doc]}
	}
	return t
}

// Next returns the next access, cycling when the trace is exhausted
// (clients "continuously issue requests", §3.2).
func (t *Trace) Next() TraceEntry {
	e := t.Entries[t.next]
	t.next = (t.next + 1) % len(t.Entries)
	return e
}

// MeanSize returns the trace's observed mean response size.
func (t *Trace) MeanSize() float64 {
	var sum int64
	for _, e := range t.Entries {
		sum += int64(e.Size)
	}
	return float64(sum) / float64(len(t.Entries))
}
