package httpd

import (
	"testing"
	"time"

	"planp.dev/planp/asp"
	"planp.dev/planp/internal/planprt"
)

func TestFailoverASPVerifies(t *testing.T) {
	p, err := planprt.Load(asp.HTTPGatewayFailover, planprt.Config{Verify: planprt.VerifySingleNode})
	if err != nil {
		t.Fatalf("failover gateway must verify for single-node deployment: %v", err)
	}
	if len(p.Info.ChannelsByName("network")) != 2 {
		t.Errorf("expected 2 network channels (TCP + admin), got %d", len(p.Info.ChannelsByName("network")))
	}
}

func TestFailoverTimeline(t *testing.T) {
	res, err := RunFailover(Config{Engine: planprt.EngineJIT, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Service ran normally before the crash.
	if res.CompletedBefore < 600 {
		t.Errorf("completed %d before crash at 100 req/s over 8s; want ~800", res.CompletedBefore)
	}
	// After the administrator marked A down, service continued on B.
	if res.CompletedAfter < 700 {
		t.Errorf("completed %d after failover; want ~1000 (10s at 100 req/s)", res.CompletedAfter)
	}
	// Both servers participated: A before the crash, B throughout.
	if res.ServedByA == 0 || res.ServedByB == 0 {
		t.Errorf("served A=%d B=%d", res.ServedByA, res.ServedByB)
	}
	// Losses are confined to the blackout window (2s at 100 req/s, about
	// half of which were stuck to A).
	if res.LostDuring > 260 {
		t.Errorf("lost %d requests; blackout losses should be bounded by the window", res.LostDuring)
	}
	if res.LostDuring == 0 {
		t.Error("expected some losses during the blackout (A's connections)")
	}
}

func TestAdminReenable(t *testing.T) {
	tb, err := NewTestbed(Config{Variant: VariantASPGW, GatewaySource: asp.HTTPGatewayFailover})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace(TraceConfig{Accesses: 5000, Documents: 500, ZipfS: 1.2, MeanSize: 4000, Seed: 4})
	client := NewClient(tb.Clients[0], VirtualAddr, 100, tr)
	client.Start(12*time.Second, 0)

	// Mark A down from the start; all traffic must go to B.
	MarkServer(tb.Clients[1], tb.Gateway.Addr, Server0Addr, true)
	var servedByAAtReenable int64
	tb.Sim.At(6*time.Second, func() {
		servedByAAtReenable = tb.ServerA.Served
		MarkServer(tb.Clients[1], tb.Gateway.Addr, Server0Addr, false)
	})
	tb.Sim.RunUntil(13 * time.Second)

	if servedByAAtReenable != 0 {
		t.Errorf("A served %d while marked down", servedByAAtReenable)
	}
	if tb.ServerA.Served == 0 {
		t.Error("A served nothing after re-enable")
	}
	if tb.ServerB.Served == 0 {
		t.Error("B never served")
	}
}
