// The figure-8 experiment: throughput vs offered load for the four
// cluster configurations the paper compares.
package httpd

import (
	"fmt"
	"time"

	"planp.dev/planp/asp"
	"planp.dev/planp/internal/netsim"
	"planp.dev/planp/internal/planprt"
)

// Variant selects one of figure 8's four configurations.
type Variant int

// Figure-8 configurations (letters as in the paper's figure).
const (
	VariantDisjoint Variant = iota // (a) two servers, disjoint client sets
	VariantNativeGW                // (b) built-in gateway + two servers
	VariantASPGW                   // (c) ASP gateway + two servers
	VariantSingle                  // (d) one server, no balancing
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case VariantDisjoint:
		return "2-servers-disjoint"
	case VariantNativeGW:
		return "native-gateway"
	case VariantASPGW:
		return "asp-gateway"
	default:
		return "single-server"
	}
}

// Testbed is the §3.2 cluster: two client hosts on a client LAN, the
// gateway machine routing to the server LAN, and two servers.
type Testbed struct {
	Sim      *netsim.Simulator
	Clients  [2]*netsim.Node
	Gateway  *netsim.Node
	ServerA  *Server
	ServerB  *Server
	GwRT     *planprt.Runtime // set for VariantASPGW
	NativeGW *NativeGateway   // set for VariantNativeGW

	// Interface handles for the chaos experiments (which inject faults
	// on the server LAN and crash the gateway).
	ClientLAN  *netsim.Segment
	ServerLAN  *netsim.Segment
	GwClientIf *netsim.Iface
	GwServerIf *netsim.Iface
	ServerAIf  *netsim.Iface
	ServerBIf  *netsim.Iface
}

// Config parameterizes a run.
type Config struct {
	Variant Variant
	Engine  planprt.EngineKind // ASP gateway engine (default jit)
	Server  ServerConfig
	// ServerB overrides server B's configuration (heterogeneous
	// clusters for the policy ablation); nil copies Server.
	ServerB *ServerConfig
	// GatewaySource overrides the ASP source for VariantASPGW
	// (policy ablation); empty uses asp.HTTPGateway.
	GatewaySource string
	Seed          int64
	// Shards caps the simulator's parallel event loops (default 1);
	// the cluster topology has no shard boundaries, so it always
	// collapses to the single-threaded engine.
	Shards int
}

// NewTestbed wires the cluster for a variant.
func NewTestbed(cfg Config) (*Testbed, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Engine == "" {
		cfg.Engine = planprt.EngineJIT
	}
	sim := netsim.New(netsim.WithSeed(cfg.Seed), netsim.WithShards(cfg.Shards))
	c1 := netsim.NewNode(sim, "client1", netsim.MustAddr("10.0.1.1"))
	c2 := netsim.NewNode(sim, "client2", netsim.MustAddr("10.0.1.2"))
	gw := netsim.NewNode(sim, "gateway", netsim.MustAddr("10.0.0.1"))
	sa := netsim.NewNode(sim, "serverA", Server0Addr)
	sb := netsim.NewNode(sim, "serverB", Server1Addr)
	gw.Forwarding = true

	clientLAN := netsim.NewSegment(sim, "clients", netsim.LinkConfig{Bandwidth: 100_000_000})
	serverLAN := netsim.NewSegment(sim, "servers", netsim.LinkConfig{Bandwidth: 100_000_000})
	i1 := clientLAN.Attach(c1)
	i2 := clientLAN.Attach(c2)
	gwClient := clientLAN.Attach(gw)
	gwServer := serverLAN.Attach(gw)
	ia := serverLAN.Attach(sa)
	ib := serverLAN.Attach(sb)

	c1.SetDefaultRoute(i1)
	c2.SetDefaultRoute(i2)
	sa.SetDefaultRoute(ia)
	sb.SetDefaultRoute(ib)
	gw.AddRoute(c1.Addr, gwClient)
	gw.AddRoute(c2.Addr, gwClient)
	gw.AddRoute(Server0Addr, gwServer)
	gw.AddRoute(Server1Addr, gwServer)
	gw.AddRoute(VirtualAddr, gwServer) // unrewritten traffic heads clusterward

	serverBCfg := cfg.Server
	if cfg.ServerB != nil {
		serverBCfg = *cfg.ServerB
	}
	tb := &Testbed{
		Sim:        sim,
		Clients:    [2]*netsim.Node{c1, c2},
		Gateway:    gw,
		ServerA:    NewServer(sa, cfg.Server),
		ServerB:    NewServer(sb, serverBCfg),
		ClientLAN:  clientLAN,
		ServerLAN:  serverLAN,
		GwClientIf: gwClient,
		GwServerIf: gwServer,
		ServerAIf:  ia,
		ServerBIf:  ib,
	}

	switch cfg.Variant {
	case VariantASPGW:
		src := cfg.GatewaySource
		if src == "" {
			src = asp.HTTPGateway
		}
		gw.PerPacketCPU = EngineCPUFactor(string(cfg.Engine))
		rt, err := planprt.Download(gw, src, planprt.Config{
			Engine: cfg.Engine,
			Verify: planprt.VerifySingleNode,
		})
		if err != nil {
			return nil, fmt.Errorf("httpd: gateway download: %w", err)
		}
		tb.GwRT = rt
	case VariantNativeGW:
		gw.PerPacketCPU = GatewayCPU
		tb.NativeGW = InstallNativeGateway(gw)
	}
	return tb, nil
}

// Point is one measurement of the figure-8 sweep.
type Point struct {
	Variant    Variant
	OfferedRPS float64
	ServedRPS  float64
	MeanLat    time.Duration
	GwDrops    int64
}

// RunPoint measures served throughput at one offered load.
func RunPoint(cfg Config, offeredRPS float64, dur, warmup time.Duration) (*Point, error) {
	tb, err := NewTestbed(cfg)
	if err != nil {
		return nil, err
	}
	tr1 := NewTrace(TraceConfig{Accesses: 20000, Documents: 2000, ZipfS: 1.2, MeanSize: 6000, Seed: cfg.Seed})
	tr2 := NewTrace(TraceConfig{Accesses: 20000, Documents: 2000, ZipfS: 1.2, MeanSize: 6000, Seed: cfg.Seed + 1})

	var clients []*Client
	switch cfg.Variant {
	case VariantDisjoint:
		clients = append(clients,
			NewClient(tb.Clients[0], Server0Addr, offeredRPS/2, tr1),
			NewClient(tb.Clients[1], Server1Addr, offeredRPS/2, tr2))
	case VariantSingle:
		clients = append(clients,
			NewClient(tb.Clients[0], Server0Addr, offeredRPS/2, tr1),
			NewClient(tb.Clients[1], Server0Addr, offeredRPS/2, tr2))
	default:
		clients = append(clients,
			NewClient(tb.Clients[0], VirtualAddr, offeredRPS/2, tr1),
			NewClient(tb.Clients[1], VirtualAddr, offeredRPS/2, tr2))
	}
	for _, c := range clients {
		c.Start(dur, warmup)
	}
	tb.Sim.RunUntil(dur + 2*time.Second) // drain in-flight responses

	var completed int64
	var lat time.Duration
	var latN int64
	for _, c := range clients {
		completed += c.WarmedCompleted
		lat += c.Latency
		latN += c.Completed
	}
	p := &Point{
		Variant:    cfg.Variant,
		OfferedRPS: offeredRPS,
		ServedRPS:  float64(completed) / (dur - warmup).Seconds(),
		GwDrops:    tb.Gateway.Stats().DroppedPkts,
	}
	if latN > 0 {
		p.MeanLat = lat / time.Duration(latN)
	}
	return p, nil
}

// Saturation measures a variant's plateau throughput by driving it well
// past capacity.
func Saturation(cfg Config, dur time.Duration) (float64, error) {
	pt, err := RunPoint(cfg, 1200, dur, dur/4)
	if err != nil {
		return 0, err
	}
	return pt.ServedRPS, nil
}

// DefaultSweep is the offered-load axis used for figure 8.
var DefaultSweep = []float64{50, 100, 150, 200, 250, 300, 350, 400, 450, 500, 550, 600, 650, 700}
