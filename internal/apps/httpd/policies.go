// The gateway's load-balancing policy catalogue: the §3.2 ASP variants
// that differ only in how pickServer chooses a physical server. The
// paper's §5 point is that swapping the policy means re-downloading one
// ASP and nothing else; the adaptation controller (internal/adapt)
// closes that loop by registering these as candidates and switching
// among them from observed metric trends.
package httpd

import "planp.dev/planp/asp"

// GatewayPolicy is one deployable load-balancing variant of the §3.2
// cluster gateway.
type GatewayPolicy struct {
	// Name is the stable policy key candidates and deployment version
	// labels derive from.
	Name string
	// Source is the PLAN-P program implementing the policy.
	Source string
	// Description says when an operator (or the adaptation policy
	// engine) would prefer this variant.
	Description string
}

// GatewayPolicies lists the deployable gateway variants. All are
// verified for single-node deployment (they rewrite destination
// addresses, which network-wide verification forbids).
func GatewayPolicies() []GatewayPolicy {
	return []GatewayPolicy{
		{
			Name:        "roundrobin",
			Source:      asp.HTTPGateway,
			Description: "alternate servers connection by connection (the paper's measurement policy); best when the cluster is homogeneous and healthy",
		},
		{
			Name:        "random",
			Source:      asp.HTTPGatewayRandom,
			Description: "random server per connection; statistically balanced without shared state",
		},
		{
			Name:        "leastconn",
			Source:      asp.HTTPGatewayLeastConn,
			Description: "fewest in-flight connections wins; shifts load away from slow or silently failing servers",
		},
		{
			Name:        "failover",
			Source:      asp.HTTPGatewayFailover,
			Description: "modulo policy plus administrator-driven server removal and automatic connection failover",
		},
	}
}

// GatewayPolicyNamed returns the named policy, or false.
func GatewayPolicyNamed(name string) (GatewayPolicy, bool) {
	for _, p := range GatewayPolicies() {
		if p.Name == name {
			return p, true
		}
	}
	return GatewayPolicy{}, false
}
