// Unified simulator construction: netsim.New(opts...) mirrors the
// functional-options style of the public planp.NewNetwork so the two
// layers read the same. NewSimulator(seed) remains as a thin shim for
// existing call sites.
package netsim

import (
	"math/rand"
	"os"

	"planp.dev/planp/internal/obs"
)

// config collects New options.
type config struct {
	seed      int64
	shards    int
	wheel     bool
	wheelSet  bool
	observers []obs.Subscriber
}

// Option configures New.
type Option func(*config)

// WithSeed sets the RNG seed all simulation randomness flows from
// (default 1). Runs with the same seed and workload are identical.
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed }
}

// WithShards sets the number of event-loop shards the simulation may
// run on (default 1). Sharding partitions the topology into islands
// separated by LinkConfig.ShardBoundary links and runs each island
// group's event heap on its own goroutine, synchronizing at horizons
// equal to the minimum cross-shard link delay (conservative parallel
// discrete-event simulation). The effective shard count is capped at
// the number of islands, so a topology that declares no boundaries
// runs the single-threaded engine unchanged whatever n says — the
// determinism contract (byte-identical output for a fixed seed at any
// shard count) is never traded for parallelism. See shard.go for the
// contract's fine print.
func WithShards(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.shards = n
	}
}

// WithWheel enables or disables the hierarchical timing wheel in front
// of each shard's event heap (wheel.go). The default is on, unless the
// environment sets PLANP_NETSIM_WHEEL=off; either way pop order — and
// therefore every deterministic experiment's output — is identical,
// which the CI bench-smoke job verifies byte-for-byte. The knob exists
// for that A/B check and for benchmarking the heap-only scheduler.
func WithWheel(on bool) Option {
	return func(c *config) {
		c.wheel = on
		c.wheelSet = true
	}
}

// wheelDefault reads the environment override once per process.
var wheelDefault = os.Getenv("PLANP_NETSIM_WHEEL") != "off"

// WithObserver subscribes an observer to the simulation's event bus at
// construction. May be given multiple times; observers fire in
// subscription order. With no observers the per-packet publish sites
// cost nothing.
func WithObserver(o obs.Subscriber) Option {
	return func(c *config) { c.observers = append(c.observers, o) }
}

// New returns a simulator configured by opts.
func New(opts ...Option) *Simulator {
	cfg := config{seed: 1, shards: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	if !cfg.wheelSet {
		cfg.wheel = wheelDefault
	}
	s := &Simulator{
		seed:       cfg.seed,
		wantShards: cfg.shards,
		nodes:      map[Addr]*Node{},
		nameIx:     map[string]*Node{},
		bus:        &obs.Bus{},
		reg:        obs.NewRegistry(),
	}
	// Shard 0 always exists and carries the legacy clock, sequence
	// numbers, and seeded RNG; with one shard its bus IS the global bus,
	// so publish sites behave exactly as the pre-sharding engine did.
	s.shards = []*shard{{
		id:    0,
		sim:   s,
		queue: timerQueue{wheelOn: cfg.wheel},
		rng:   rand.New(rand.NewSource(cfg.seed)),
		bus:   s.bus,
	}}
	for _, o := range cfg.observers {
		s.bus.Subscribe(o)
	}
	return s
}

// NewSimulator returns a simulator with the given RNG seed.
//
// Deprecated: use New(WithSeed(seed)); NewSimulator remains as a shim
// for existing call sites and tests.
func NewSimulator(seed int64) *Simulator {
	return New(WithSeed(seed))
}
