// Sharded-execution tests: the determinism contract (shards=1 vs
// shards=N byte-identical), the island collapse, the seal freeze, the
// unified construction API, and a race hammer for the cross-shard
// paths (mailboxes, merged observability, shared packets).
package netsim

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"planp.dev/planp/internal/obs"
)

// ringParams describes one ring-of-islands topology and its workload.
// Periods, phases, and link delays are staggered with prime-flavored
// offsets so no cross-boundary arrival shares an exact virtual-time
// tick with an unrelated event — the tie-freeness leg of the
// determinism contract (see the package comment in shard.go).
type ringParams struct {
	islands  int // islands in the ring (>= 2 for a sharded run)
	hosts    int // hosts per island
	sends    int // packets each host originates
	crossHop int // destination island offset for remote traffic
}

// buildRing wires p.islands star islands (core router + hosts) into a
// clockwise ring of shard-boundary links and installs the send
// workload. It returns one delivery counter per island.
func buildRing(sim *Simulator, p ringParams) []*int {
	cores := make([]*Node, p.islands)
	hosts := make([][]*Node, p.islands)
	delivered := make([]*int, p.islands)
	for r := 0; r < p.islands; r++ {
		base := Addr(10<<24 | r<<16)
		core := NewNode(sim, fmt.Sprintf("core%d", r), base|1)
		core.Forwarding = true
		cores[r] = core
		count := new(int)
		delivered[r] = count
		for h := 0; h < p.hosts; h++ {
			hn := NewNode(sim, fmt.Sprintf("h%d.%d", r, h), base|Addr(0x100+h))
			l := Connect(sim, hn, core, LinkConfig{
				Bandwidth: 100e6,
				Delay:     time.Duration(11+2*h)*time.Microsecond + time.Duration(r*31+7)*time.Nanosecond,
			})
			ifs := l.Ifaces()
			hn.SetDefaultRoute(ifs[0])
			core.AddRoute(hn.Addr, ifs[1])
			hn.BindUDP(9, func(*Packet) { *count++ })
			hosts[r] = append(hosts[r], hn)
		}
	}
	for r := 0; r < p.islands; r++ {
		l := Connect(sim, cores[r], cores[(r+1)%p.islands], LinkConfig{
			Bandwidth:     1e9,
			Delay:         5*time.Millisecond + time.Duration(r)*1013*time.Nanosecond,
			ShardBoundary: true,
		})
		// Unknown destinations route clockwise around the ring; the
		// counter-clockwise direction stays idle.
		cores[r].SetDefaultRoute(l.Ifaces()[0])
	}

	for r := range hosts {
		for h, src := range hosts[r] {
			remote := hosts[(r+p.crossHop)%p.islands][(h+1)%p.hosts].Addr
			local := hosts[r][(h+1)%p.hosts].Addr
			env := src.Env()
			period := time.Duration(200+17*r+13*h)*time.Microsecond + time.Duration(h*101+3)*time.Nanosecond
			phase := time.Duration(r*7919+h*104729+1) * time.Nanosecond
			node, rr, hh := src, r, h
			sent := 0
			var tick func()
			tick = func() {
				dst := remote
				if sent%2 == 1 && p.hosts > 1 {
					dst = local
				}
				pay := make([]byte, 64+(rr*16+hh*4)%128)
				node.Send(NewUDP(node.Addr, dst, uint16(1000+sent), 9, pay).Own())
				sent++
				if sent < p.sends {
					env.After(period, tick)
				}
			}
			env.After(phase, tick)
		}
	}
	return delivered
}

// ringRun is one full simulation's comparable output.
type ringRun struct {
	events    string // merged observability stream, one line per event
	metrics   string // registry render
	delivered []int  // per-island application deliveries
	processed int
	now       time.Duration
	shards    int
}

func runRing(p ringParams, seed int64, shards int) ringRun {
	var trace strings.Builder
	sim := New(WithSeed(seed), WithShards(shards), WithObserver(obs.Func(func(ev obs.Event) {
		trace.WriteString(ev.String())
		trace.WriteByte('\n')
	})))
	counters := buildRing(sim, p)
	n := sim.Run()
	out := ringRun{
		events:    trace.String(),
		metrics:   sim.Metrics().Render(),
		processed: n,
		now:       sim.Now(),
		shards:    sim.ShardCount(),
	}
	for _, c := range counters {
		out.delivered = append(out.delivered, *c)
	}
	return out
}

func diffRuns(t *testing.T, want, got ringRun, label string) {
	t.Helper()
	if got.events != want.events {
		wl := strings.Split(want.events, "\n")
		gl := strings.Split(got.events, "\n")
		for i := 0; i < len(wl) && i < len(gl); i++ {
			if wl[i] != gl[i] {
				t.Fatalf("%s: event streams diverge at line %d:\n  shards=1: %s\n  sharded:  %s", label, i+1, wl[i], gl[i])
			}
		}
		t.Fatalf("%s: event stream lengths differ: %d vs %d lines", label, len(wl), len(gl))
	}
	if got.metrics != want.metrics {
		t.Errorf("%s: metrics diverge:\n--- shards=1 ---\n%s\n--- sharded ---\n%s", label, want.metrics, got.metrics)
	}
	if got.processed != want.processed {
		t.Errorf("%s: processed %d events, want %d", label, got.processed, want.processed)
	}
	if got.now != want.now {
		t.Errorf("%s: final clock %v, want %v", label, got.now, want.now)
	}
	for i := range want.delivered {
		if got.delivered[i] != want.delivered[i] {
			t.Errorf("%s: island %d delivered %d, want %d", label, i, got.delivered[i], want.delivered[i])
		}
	}
}

// TestShardInvarianceRandomTopologies is the property test: random ring
// topologies and workloads must produce byte-identical event streams,
// metrics, and clocks at every shard count.
func TestShardInvarianceRandomTopologies(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed * 997))
		p := ringParams{
			islands: 2 + rng.Intn(4),
			hosts:   1 + rng.Intn(3),
			sends:   3 + rng.Intn(5),
		}
		p.crossHop = 1 + rng.Intn(p.islands-1)
		ref := runRing(p, seed, 1)
		if ref.shards != 1 {
			t.Fatalf("seed %d: reference run used %d shards", seed, ref.shards)
		}
		if ref.events == "" {
			t.Fatalf("seed %d: reference run produced no events", seed)
		}
		for _, n := range []int{2, 3, 4, 7} {
			got := runRing(p, seed, n)
			wantShards := n
			if wantShards > p.islands {
				wantShards = p.islands
			}
			if got.shards != wantShards {
				t.Errorf("seed %d shards=%d: effective shard count %d, want %d", seed, n, got.shards, wantShards)
			}
			diffRuns(t, ref, got, fmt.Sprintf("seed %d shards=%d (topology %+v)", seed, n, p))
		}
	}
}

// TestShardCollapseWithoutBoundaries checks the conservative refusal to
// cut: a topology with no boundary links is one island, so WithShards(4)
// runs the legacy single-threaded engine with identical output.
func TestShardCollapseWithoutBoundaries(t *testing.T) {
	build := func(shards int) ringRun {
		var trace strings.Builder
		sim := New(WithSeed(3), WithShards(shards), WithObserver(obs.Func(func(ev obs.Event) {
			trace.WriteString(ev.String())
			trace.WriteByte('\n')
		})))
		a := NewNode(sim, "a", MustAddr("10.0.0.1"))
		r := NewNode(sim, "r", MustAddr("10.0.0.2"))
		b := NewNode(sim, "b", MustAddr("10.0.0.3"))
		r.Forwarding = true
		l1 := Connect(sim, a, r, LinkConfig{Bandwidth: 10e6})
		l2 := Connect(sim, r, b, LinkConfig{Bandwidth: 10e6})
		a.SetDefaultRoute(l1.Ifaces()[0])
		r.AddRoute(b.Addr, l2.Ifaces()[0])
		got := 0
		b.BindUDP(5, func(*Packet) { got++ })
		for i := 0; i < 4; i++ {
			d := time.Duration(i) * 250 * time.Microsecond
			sim.At(d, func() { a.Send(NewUDP(a.Addr, b.Addr, 1, 5, make([]byte, 100)).Own()) })
		}
		n := sim.Run()
		return ringRun{
			events: trace.String(), metrics: sim.Metrics().Render(),
			delivered: []int{got}, processed: n, now: sim.Now(), shards: sim.ShardCount(),
		}
	}
	ref := build(1)
	got := build(4)
	if got.shards != 1 {
		t.Fatalf("boundary-free topology ran on %d shards, want collapse to 1", got.shards)
	}
	diffRuns(t, ref, got, "collapsed")
}

// TestShardSealFreezesTopology: once a genuinely sharded simulation has
// run, island assignment is fixed, so topology mutation panics. The
// single-shard engine keeps the legacy permissive behavior.
func TestShardSealFreezesTopology(t *testing.T) {
	sim := New(WithShards(2))
	a := NewNode(sim, "a", MustAddr("10.0.0.1"))
	b := NewNode(sim, "b", MustAddr("10.0.0.2"))
	Connect(sim, a, b, LinkConfig{Bandwidth: 1e9, Delay: time.Millisecond, ShardBoundary: true})
	sim.Run()
	if sim.ShardCount() != 2 {
		t.Fatalf("ShardCount = %d, want 2", sim.ShardCount())
	}
	mustPanic := func(label string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s after sharded run did not panic", label)
			}
		}()
		fn()
	}
	mustPanic("NewNode", func() { NewNode(sim, "c", MustAddr("10.0.0.3")) })
	mustPanic("Connect", func() { Connect(sim, a, b, LinkConfig{Bandwidth: 1e9}) })
	mustPanic("NewSegment", func() { NewSegment(sim, "lan", LinkConfig{Bandwidth: 1e9}) })

	// Single-shard runs stay mutable (the legacy engine allowed growing
	// the topology between runs and existing tests rely on it).
	legacy := New()
	x := NewNode(legacy, "x", MustAddr("10.1.0.1"))
	legacy.Run()
	y := NewNode(legacy, "y", MustAddr("10.1.0.2"))
	Connect(legacy, x, y, LinkConfig{Bandwidth: 1e9})
}

// TestNewOptionsEquivalence: the unified constructor with defaults and
// the deprecated shim build identical simulators, and WithObserver
// matches a post-construction Subscribe.
func TestNewOptionsEquivalence(t *testing.T) {
	run := func(sim *Simulator, sink *obs.CountingSink) (string, int64) {
		if sink != nil {
			sim.Events().Subscribe(sink)
		}
		a := NewNode(sim, "a", MustAddr("10.0.0.1"))
		b := NewNode(sim, "b", MustAddr("10.0.0.2"))
		l := Connect(sim, a, b, LinkConfig{Bandwidth: 10e6})
		a.SetDefaultRoute(l.Ifaces()[0])
		b.BindUDP(7, func(*Packet) {})
		jitter := sim.Int63n(1000) // seed-visible draw
		sim.After(time.Duration(jitter)*time.Nanosecond, func() {
			a.Send(NewUDP(a.Addr, b.Addr, 1, 7, make([]byte, 50)).Own())
		})
		sim.Run()
		return sim.Metrics().Render(), int64(sim.Now())
	}
	m1, t1 := run(New(WithSeed(42)), nil)
	m2, t2 := run(NewSimulator(42), nil)
	if m1 != m2 || t1 != t2 {
		t.Errorf("New(WithSeed) and NewSimulator diverge: %q/%d vs %q/%d", m1, t1, m2, t2)
	}
	m3, t3 := run(New(WithSeed(99)), nil)
	if m3 != m1 && t3 == t1 {
		t.Logf("different seed changed metrics but not clock (fine)")
	}

	var viaOpt obs.CountingSink
	sim := New(WithSeed(42), WithObserver(&viaOpt))
	var viaSub obs.CountingSink
	run(sim, &viaSub)
	if viaOpt.Total() == 0 || viaOpt.Total() != viaSub.Total() {
		t.Errorf("WithObserver saw %d events, post-construction Subscribe saw %d", viaOpt.Total(), viaSub.Total())
	}
}

// TestCrossShardRace hammers every cross-shard surface under the race
// detector: mailbox ingestion, per-direction link state, the buffered
// observability merge, shared disowned packets fanned out to several
// shards at once (multicast across boundaries), and concurrent metrics
// snapshots from outside the simulation.
func TestCrossShardRace(t *testing.T) {
	p := ringParams{islands: 8, hosts: 2, sends: 40, crossHop: 3}
	var sink obs.CountingSink
	sim := New(WithSeed(11), WithShards(4), WithObserver(&sink))
	buildRing(sim, p)

	// Multicast across boundaries: core0 fans one packet pointer out to
	// both ring neighbors (different shards), which join the group and
	// deliver — concurrent Disown on a shared packet.
	group := MustAddr("224.0.0.1")
	core0 := sim.NodeByName("core0")
	for _, ifc := range core0.Ifaces() {
		if ifc.Peer() != nil && ifc.Peer().Node.Forwarding {
			core0.AddMulticastRoute(group, ifc)
		}
	}
	sim.NodeByName("core1").JoinGroup(group)
	sim.NodeByName(fmt.Sprintf("core%d", p.islands-1)).JoinGroup(group)
	env := core0.Env()
	for i := 0; i < 50; i++ {
		d := time.Duration(i)*90*time.Microsecond + 17*time.Nanosecond
		env.After(d, func() {
			core0.Send(NewUDP(core0.Addr, group, 1, 9, make([]byte, 200)))
		})
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				sim.Metrics().Snapshot()
			}
		}
	}()
	n := sim.Run()
	close(done)
	wg.Wait()
	if sim.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d, want 4", sim.ShardCount())
	}
	if n == 0 || sink.Total() == 0 {
		t.Fatalf("race hammer ran %d events, observer saw %d — workload did not run", n, sink.Total())
	}
}
