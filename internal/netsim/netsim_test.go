package netsim

import (
	"testing"
	"time"

	"planp.dev/planp/internal/substrate"
)

func mk(t *testing.T) (*Simulator, *Node, *Node, *Node) {
	t.Helper()
	sim := NewSimulator(1)
	a := NewNode(sim, "a", MustAddr("10.0.0.1"))
	r := NewNode(sim, "r", MustAddr("10.0.0.254"))
	b := NewNode(sim, "b", MustAddr("10.0.1.1"))
	r.Forwarding = true
	la := Connect(sim, a, r, LinkConfig{Bandwidth: 10_000_000})
	lb := Connect(sim, r, b, LinkConfig{Bandwidth: 10_000_000})
	a.SetDefaultRoute(la.a)
	r.AddRoute(a.Addr, la.b)
	r.AddRoute(b.Addr, lb.a)
	b.SetDefaultRoute(lb.b)
	return sim, a, r, b
}

func TestEventOrdering(t *testing.T) {
	sim := NewSimulator(1)
	var order []int
	sim.At(3*time.Millisecond, func() { order = append(order, 3) })
	sim.At(1*time.Millisecond, func() { order = append(order, 1) })
	sim.At(2*time.Millisecond, func() { order = append(order, 2) })
	sim.At(1*time.Millisecond, func() { order = append(order, 11) }) // FIFO tie
	sim.Run()
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if sim.Now() != 3*time.Millisecond {
		t.Errorf("now = %v, want 3ms", sim.Now())
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	sim := NewSimulator(1)
	fired := false
	sim.At(5*time.Millisecond, func() { fired = true })
	sim.RunUntil(2 * time.Millisecond)
	if fired {
		t.Error("event fired before deadline")
	}
	if sim.Now() != 2*time.Millisecond {
		t.Errorf("now = %v, want 2ms", sim.Now())
	}
	sim.RunUntil(10 * time.Millisecond)
	if !fired {
		t.Error("event did not fire")
	}
}

func TestUnicastDelivery(t *testing.T) {
	sim, a, _, b := mk(t)
	var got []*Packet
	b.BindUDP(9, func(p *Packet) { got = append(got, p) })
	a.Send(NewUDP(a.Addr, b.Addr, 1000, 9, []byte("hello")))
	sim.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(got))
	}
	if string(got[0].Payload) != "hello" {
		t.Errorf("payload %q", got[0].Payload)
	}
	if got[0].IP.TTL != 63 {
		t.Errorf("TTL = %d, want 63 (one hop through router)", got[0].IP.TTL)
	}
}

func TestDeliveryLatencyMatchesLinkModel(t *testing.T) {
	sim := NewSimulator(1)
	a := NewNode(sim, "a", MustAddr("10.0.0.1"))
	b := NewNode(sim, "b", MustAddr("10.0.0.2"))
	l := Connect(sim, a, b, LinkConfig{Bandwidth: 8_000_000, Delay: 2 * time.Millisecond})
	a.SetDefaultRoute(l.a)
	var at time.Duration
	b.BindUDP(9, func(*Packet) { at = sim.Now() })
	pkt := NewUDP(a.Addr, b.Addr, 1, 9, make([]byte, 972)) // 1000B on wire
	a.Send(pkt)
	sim.Run()
	// 1000 bytes at 8 Mb/s = 1ms serialization + 2ms propagation.
	want := 3 * time.Millisecond
	if at != want {
		t.Errorf("arrival at %v, want %v (size=%d)", at, want, pkt.Size())
	}
}

func TestTTLExpiry(t *testing.T) {
	sim, a, r, b := mk(t)
	delivered := false
	b.BindUDP(9, func(*Packet) { delivered = true })
	pkt := NewUDP(a.Addr, b.Addr, 1, 9, nil)
	pkt.IP.TTL = 1
	a.Send(pkt)
	sim.Run()
	if delivered {
		t.Error("TTL=1 packet crossed the router")
	}
	if r.Stats().DroppedPkts != 1 {
		t.Errorf("router drops = %d, want 1", r.Stats().DroppedPkts)
	}
}

func TestQueueOverflowDropsTail(t *testing.T) {
	sim := NewSimulator(1)
	a := NewNode(sim, "a", MustAddr("10.0.0.1"))
	b := NewNode(sim, "b", MustAddr("10.0.0.2"))
	l := Connect(sim, a, b, LinkConfig{Bandwidth: 1_000_000, QueueLimit: 2000})
	a.SetDefaultRoute(l.a)
	n := 0
	b.BindUDP(9, func(*Packet) { n++ })
	for i := 0; i < 50; i++ {
		a.Send(NewUDP(a.Addr, b.Addr, 1, 9, make([]byte, 1000)))
	}
	sim.Run()
	if l.Dropped(l.a) == 0 {
		t.Error("expected tail drops on a 2KB queue")
	}
	if n == 0 || n == 50 {
		t.Errorf("delivered %d/50; expected partial delivery", n)
	}
	if int64(n)+l.Dropped(l.a) != 50 {
		t.Errorf("delivered %d + dropped %d != 50", n, l.Dropped(l.a))
	}
}

func TestMulticastTreeDelivery(t *testing.T) {
	sim := NewSimulator(1)
	src := NewNode(sim, "src", MustAddr("10.0.0.1"))
	r := NewNode(sim, "r", MustAddr("10.0.0.254"))
	r.Forwarding = true
	c1 := NewNode(sim, "c1", MustAddr("10.0.1.1"))
	c2 := NewNode(sim, "c2", MustAddr("10.0.1.2"))
	up := Connect(sim, src, r, LinkConfig{Bandwidth: 10_000_000})
	seg := NewSegment(sim, "lan", LinkConfig{Bandwidth: 10_000_000})
	rseg := seg.Attach(r)
	seg.Attach(c1)
	seg.Attach(c2)
	src.SetDefaultRoute(up.a)

	group := MustAddr("224.1.1.1")
	r.AddMulticastRoute(group, rseg)
	c1.JoinGroup(group)
	// c2 does not join.

	got1, got2 := 0, 0
	c1.BindUDP(5000, func(*Packet) { got1++ })
	c2.BindUDP(5000, func(*Packet) { got2++ })
	for i := 0; i < 3; i++ {
		src.Send(NewUDP(src.Addr, group, 1, 5000, []byte("audio")))
	}
	sim.Run()
	if got1 != 3 {
		t.Errorf("joined client received %d, want 3", got1)
	}
	if got2 != 0 {
		t.Errorf("non-member received %d, want 0", got2)
	}
}

func TestSegmentPromiscuousCapture(t *testing.T) {
	sim := NewSimulator(1)
	a := NewNode(sim, "a", MustAddr("10.0.0.1"))
	b := NewNode(sim, "b", MustAddr("10.0.0.2"))
	c := NewNode(sim, "c", MustAddr("10.0.0.3"))
	seg := NewSegment(sim, "lan", LinkConfig{Bandwidth: 10_000_000})
	ia := seg.Attach(a)
	seg.Attach(b)
	ic := seg.Attach(c)
	a.SetDefaultRoute(ia)

	seen := 0
	c.Tap(func(*Packet) { seen++ })
	bGot := 0
	b.BindUDP(9, func(*Packet) { bGot++ })

	a.Send(NewUDP(a.Addr, b.Addr, 1, 9, []byte("x")))
	sim.Run()
	if bGot != 1 {
		t.Fatalf("b received %d, want 1", bGot)
	}
	if seen != 0 {
		t.Fatalf("non-promiscuous c saw %d frames, want 0", seen)
	}

	ic.Promisc = true
	a.Send(NewUDP(a.Addr, b.Addr, 1, 9, []byte("y")))
	sim.Run()
	if seen != 1 {
		t.Errorf("promiscuous c saw %d frames, want 1", seen)
	}
}

func TestRateMeterWindow(t *testing.T) {
	m := NewRateMeter(100 * time.Millisecond)
	// 10 KB over 100ms = 800 kb/s.
	for i := 0; i < 10; i++ {
		m.Add(time.Duration(i)*10*time.Millisecond, 1000)
	}
	got := m.BitsPerSecond(100 * time.Millisecond)
	if got < 700_000 || got > 900_000 {
		t.Errorf("rate = %d b/s, want ~800k", got)
	}
	// After a long idle period the window drains.
	if got := m.BitsPerSecond(2 * time.Second); got != 0 {
		t.Errorf("idle rate = %d, want 0", got)
	}
}

func TestRateMeterUtilization(t *testing.T) {
	m := NewRateMeter(100 * time.Millisecond)
	// The meter measures over the window's completed buckets
	// (window-bucket = 90 ms). Place 1250 B in each of the 9 buckets
	// covering 0-90 ms and query inside the 10th: 90 kb / 90 ms = 1 Mb/s.
	for i := 0; i < 9; i++ {
		m.Add(time.Duration(i)*10*time.Millisecond, 1250)
	}
	u := m.Utilization(95*time.Millisecond, 10_000_000)
	if u != 10 {
		t.Errorf("utilization = %d%%, want 10%%", u)
	}
	if u := m.Utilization(95*time.Millisecond, 0); u != 0 {
		t.Errorf("zero-capacity utilization = %d, want 0", u)
	}
	// Utilization clamps at 100%.
	m2 := NewRateMeter(100 * time.Millisecond)
	for i := 0; i < 10; i++ {
		m2.Add(time.Duration(i)*10*time.Millisecond, 1_000_000)
	}
	if u := m2.Utilization(95*time.Millisecond, 10_000_000); u != 100 {
		t.Errorf("overloaded utilization = %d, want clamped 100", u)
	}
}

func TestProcessorIntercepts(t *testing.T) {
	sim, a, r, b := mk(t)
	var seen []*Packet
	r.Processor = procFunc(func(pkt *Packet, in substrate.Iface) bool {
		seen = append(seen, pkt)
		return pkt.UDP != nil && pkt.UDP.DstPort == 7 // swallow port 7
	})
	got := 0
	b.BindUDP(9, func(*Packet) { got++ })
	b.BindUDP(7, func(*Packet) { got += 100 })
	a.Send(NewUDP(a.Addr, b.Addr, 1, 9, nil))
	a.Send(NewUDP(a.Addr, b.Addr, 1, 7, nil))
	sim.Run()
	if len(seen) != 2 {
		t.Errorf("processor saw %d packets, want 2", len(seen))
	}
	if got != 1 {
		t.Errorf("deliveries = %d, want only the port-9 packet (1)", got)
	}
}

type procFunc func(pkt *Packet, in substrate.Iface) bool

func (f procFunc) Process(pkt *Packet, in substrate.Iface) bool { return f(pkt, in) }

func TestSplitHorizonPreventsReflection(t *testing.T) {
	// A router attached to one segment must not bounce a frame back out
	// the interface it came from.
	sim := NewSimulator(1)
	h := NewNode(sim, "h", MustAddr("10.0.0.1"))
	r := NewNode(sim, "r", MustAddr("10.0.0.254"))
	r.Forwarding = true
	seg := NewSegment(sim, "lan", LinkConfig{Bandwidth: 10_000_000})
	ih := seg.Attach(h)
	ir := seg.Attach(r)
	h.SetDefaultRoute(ih)
	r.SetDefaultRoute(ir)
	// Frame for an unknown host: router would forward out its only
	// interface, which is where it came from.
	h.Send(NewUDP(h.Addr, MustAddr("10.9.9.9"), 1, 9, nil))
	sim.Run()
	if r.Stats().ForwardedPkts != 0 {
		t.Errorf("router reflected %d packets back onto the segment", r.Stats().ForwardedPkts)
	}
}

func TestAddrParsing(t *testing.T) {
	a, err := ParseAddr("131.254.60.81")
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != "131.254.60.81" {
		t.Errorf("round trip = %s", a)
	}
	for _, bad := range []string{"1.2.3", "256.1.1.1", "x.y.z.w", ""} {
		if _, err := ParseAddr(bad); err == nil {
			t.Errorf("ParseAddr(%q) succeeded", bad)
		}
	}
	if !MustAddr("224.0.0.5").IsMulticast() {
		t.Error("224.0.0.5 should be multicast")
	}
	if MustAddr("10.0.0.1").IsMulticast() {
		t.Error("10.0.0.1 should not be multicast")
	}
}

func TestPacketCloneCopyOnWrite(t *testing.T) {
	p := NewTCP(MustAddr("1.1.1.1"), MustAddr("2.2.2.2"), 10, 80, 42, FlagSyn, []byte("abc"))
	q := p.Clone()
	q.IP.Dst = MustAddr("3.3.3.3")
	if p.IP.Dst != MustAddr("2.2.2.2") {
		t.Error("Clone shares the IP header with the original")
	}
	if q.TCP != p.TCP {
		t.Error("Clone should share the transport header struct")
	}
	if len(q.Payload) != len(p.Payload) || (len(q.Payload) > 0 && &q.Payload[0] != &p.Payload[0]) {
		t.Error("Clone should share the payload bytes")
	}
	if !q.Owned() {
		t.Error("Clone result should be exclusively owned by the caller")
	}
}

func TestPacketCloneMutIsDeep(t *testing.T) {
	p := NewTCP(MustAddr("1.1.1.1"), MustAddr("2.2.2.2"), 10, 80, 42, FlagSyn, []byte("abc"))
	q := p.CloneMut()
	q.IP.Dst = MustAddr("3.3.3.3")
	q.TCP.DstPort = 8080
	q.Payload[0] = 'X'
	if p.IP.Dst != MustAddr("2.2.2.2") || p.TCP.DstPort != 80 || p.Payload[0] != 'a' {
		t.Error("CloneMut shares state with the original")
	}
}
