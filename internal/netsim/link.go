// Links and segments: the two transmission media. A Link is a duplex
// point-to-point wire (router uplinks); a Segment is a shared Ethernet
// broadcast domain (the client LAN of figure 5, where the load generator
// competes with audio traffic, and the MPEG experiment's shared medium).
package netsim

import (
	"fmt"
	"time"

	"planp.dev/planp/internal/obs"
	"planp.dev/planp/internal/substrate"
)

// emitMedium publishes an enqueue/drop event for a transmission from
// the given interface on the executing shard's bus; callers guard with
// bus.Active().
func emitMedium(sh *shard, kind obs.Kind, from *Iface, pkt *Packet, detail string) {
	sh.bus.Publish(obs.Event{
		Kind: kind, At: sh.now, Node: from.Name,
		Src: uint32(pkt.IP.Src), Dst: uint32(pkt.IP.Dst),
		Size: pkt.Size(), Detail: detail,
	})
}

// Medium is the transmission substrate an interface attaches to.
type Medium interface {
	// Transmit sends pkt from the given interface.
	Transmit(from *Iface, pkt *Packet)
	// Bandwidth is the medium capacity in bits/s (per direction for
	// links, shared for segments).
	Bandwidth() int64
	// MeterFor returns the meter measuring from's outgoing direction.
	MeterFor(from *Iface) *RateMeter
	// faultDrop counts a chaos-injected drop in from's direction,
	// distinct from queue-overflow drops.
	faultDrop(from *Iface)
}

// applyFault runs the interface's fault layer for one transmission.
// It returns the (possibly corrupted) packet to transmit, the number of
// extra copies, the added delivery delay, and whether to transmit at
// all. Shared by Link and Segment so the two media drop, corrupt, and
// duplicate identically.
func applyFault(m Medium, from *Iface, pkt *Packet) (*Packet, int, time.Duration, bool) {
	act := from.fault(pkt)
	if act.Drop {
		m.faultDrop(from)
		if sh := from.Node.sh; sh.bus.Active() {
			emitMedium(sh, obs.KindDrop, from, pkt, "fault")
		}
		return nil, 0, 0, false
	}
	if act.Corrupt {
		pkt = substrate.CorruptPayload(pkt, act.CorruptBit)
	}
	return pkt, act.Dup, act.Delay, true
}

// Iface attaches a node to a medium.
type Iface struct {
	Node   *Node
	Name   string
	medium Medium

	// Promisc delivers frames addressed to other hosts up to the node
	// (needed by capture ASPs such as the MPEG client, §3.3).
	Promisc bool

	// fault, when set, is consulted per transmission by the attached
	// medium (internal/chaos installs it). nil is the fast path.
	fault substrate.FaultFunc

	// peer is the other endpoint for point-to-point links (nil on
	// segments).
	peer *Iface

	// rxDir is the link direction that delivers INTO this interface
	// (nil on segments) — the pending-delivery ring deliverBatch drains.
	rxDir *direction
}

// SetFault installs (or, with nil, removes) the interface's fault layer
// (substrate.FaultPort).
func (i *Iface) SetFault(f substrate.FaultFunc) { i.fault = f }

// Peer returns the interface at the other end of a point-to-point link,
// or nil for segment attachments.
func (i *Iface) Peer() *Iface { return i.peer }

// Bandwidth returns the attached medium's capacity.
func (i *Iface) Bandwidth() int64 { return i.medium.Bandwidth() }

// Load returns the utilization percentage of this interface's outgoing
// direction.
func (i *Iface) Load() int64 {
	m := i.medium.MeterFor(i)
	return m.Utilization(i.Node.sh.now, i.medium.Bandwidth())
}

// Send transmits pkt out this interface.
func (i *Iface) Send(pkt *Packet) { i.medium.Transmit(i, pkt) }

// ---------------------------------------------------------------------------
// Point-to-point link

// pending is one in-flight link delivery waiting in a direction's
// batch ring. at and seq are the packet's ORIGINAL schedule key,
// assigned at transmit time exactly as the unbatched engine would —
// reusing them when the drain event is rescheduled is what keeps the
// queue's interleaving (and therefore all output) byte-identical.
type pending struct {
	at  time.Duration
	seq uint64
	pkt *Packet
}

// direction models one direction of a duplex link.
type direction struct {
	busyUntil    time.Duration
	meter        *RateMeter
	dropped      int64 // queue-overflow drops
	faultDropped int64 // chaos-injected drops (distinct by contract)

	// Batched delivery: instead of one queue event per in-flight packet,
	// the direction keeps its deliveries here (arrival times are
	// monotone on the faultless path — serialization is FIFO) and the
	// queue holds at most ONE event per direction, carrying the head's
	// original (at, seq). Chaos-delayed copies bypass the ring (their
	// arrivals are not monotone), as do cross-shard deliveries (the
	// outbox is the ordering mechanism there).
	pend     []pending
	head     int
	inFlight bool

	// lastSize/lastTx memoize the serialization-time division for
	// back-to-back same-size packets (every streaming workload). The
	// cached value is the exact division result, so timing is
	// bit-identical.
	lastSize int64
	lastTx   time.Duration
}

// Link is a full-duplex point-to-point link with serialization delay,
// propagation delay, and a drop-tail queue bounded in bytes.
type Link struct {
	bandwidth  int64 // bits/s per direction
	delay      time.Duration
	queueLimit int64 // bytes of backlog before tail drop
	boundary   bool  // eligible shard cut (LinkConfig.ShardBoundary)

	a, b *Iface
	dirs [2]direction // 0: a->b, 1: b->a
}

var _ Medium = (*Link)(nil)

// LinkConfig configures a point-to-point link.
type LinkConfig struct {
	Bandwidth  int64         // bits/s; required
	Delay      time.Duration // propagation delay (default 1ms)
	QueueLimit int64         // bytes (default 64 KiB)
	Window     time.Duration // meter window (default DefaultMeterWindow)

	// ShardBoundary marks the link as a permissible cut point for
	// sharded runs (New's WithShards): the topology is partitioned into
	// islands connected only by boundary links, and the minimum boundary
	// Delay that actually crosses shards becomes the PDES lookahead (the
	// parallel window length). Boundary links on ordinary single-shard
	// runs behave like any other link.
	ShardBoundary bool
}

func (c *LinkConfig) fill() {
	if c.Delay == 0 {
		c.Delay = time.Millisecond
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = 64 << 10
	}
}

// Connect wires two nodes with a duplex link and returns it. Interface
// names are derived from the peer node's name.
func Connect(sim *Simulator, a, b *Node, cfg LinkConfig) *Link {
	sim.assertMutable()
	cfg.fill()
	l := &Link{bandwidth: cfg.Bandwidth, delay: cfg.Delay, queueLimit: cfg.QueueLimit, boundary: cfg.ShardBoundary}
	l.dirs[0].meter = NewRateMeter(cfg.Window)
	l.dirs[1].meter = NewRateMeter(cfg.Window)
	l.a = &Iface{Node: a, Name: fmt.Sprintf("%s->%s", a.Name, b.Name), medium: l}
	l.b = &Iface{Node: b, Name: fmt.Sprintf("%s->%s", b.Name, a.Name), medium: l}
	l.a.peer, l.b.peer = l.b, l.a
	l.a.rxDir, l.b.rxDir = &l.dirs[1], &l.dirs[0] // dirs[0] is a->b: it delivers into b
	a.addIface(l.a)
	b.addIface(l.b)
	sim.links = append(sim.links, l)
	return l
}

// Bandwidth implements Medium.
func (l *Link) Bandwidth() int64 { return l.bandwidth }

// Ifaces returns the link's two interfaces in Connect argument order.
func (l *Link) Ifaces() [2]*Iface { return [2]*Iface{l.a, l.b} }

// MeterFor implements Medium.
func (l *Link) MeterFor(from *Iface) *RateMeter {
	if from == l.a {
		return l.dirs[0].meter
	}
	return l.dirs[1].meter
}

// Dropped returns the packets dropped by queue overflow in the
// direction out of from (chaos-injected drops are counted separately;
// see FaultDropped).
func (l *Link) Dropped(from *Iface) int64 {
	if from == l.a {
		return l.dirs[0].dropped
	}
	return l.dirs[1].dropped
}

// FaultDropped returns the packets dropped by injected faults in the
// direction out of from.
func (l *Link) FaultDropped(from *Iface) int64 {
	if from == l.a {
		return l.dirs[0].faultDropped
	}
	return l.dirs[1].faultDropped
}

// faultDrop implements Medium.
func (l *Link) faultDrop(from *Iface) {
	if from == l.a {
		l.dirs[0].faultDropped++
	} else {
		l.dirs[1].faultDropped++
	}
}

// Transmit implements Medium: consult the fault layer if one is
// installed, then serialize (queueing behind earlier traffic),
// propagate, deliver to the peer.
func (l *Link) Transmit(from *Iface, pkt *Packet) {
	if from.fault == nil {
		l.transmit(from, pkt, 0)
		return
	}
	pkt, dup, delay, ok := applyFault(l, from, pkt)
	if !ok {
		return
	}
	// Duplicates share the verdict (they are copies of one decision,
	// not fresh transmissions) and queue behind the original.
	l.transmit(from, pkt, delay)
	for k := 0; k < dup; k++ {
		l.transmit(from, pkt.Clone(), delay)
	}
}

// transmit is the faultless serialization path; extra is added to the
// propagation delay (chaos-injected latency).
func (l *Link) transmit(from *Iface, pkt *Packet, extra time.Duration) {
	di := 0
	dst := l.b
	if from == l.b {
		di = 1
		dst = l.a
	}
	dir := &l.dirs[di]
	sh := from.Node.sh
	now := sh.now

	// Backlog is whatever is still waiting to finish serialization.
	// Per-direction state (busyUntil, meter, drop counters) is only ever
	// touched by the sending node's shard, so sharded runs mutate it
	// without locks.
	backlogBits := int64(0)
	if dir.busyUntil > now {
		backlogBits = int64(dir.busyUntil-now) * l.bandwidth / int64(time.Second)
	}
	if backlogBits/8 > l.queueLimit {
		dir.dropped++
		if sh.bus.Active() {
			emitMedium(sh, obs.KindDrop, from, pkt, "queue")
		}
		return
	}

	start := now
	if dir.busyUntil > start {
		start = dir.busyUntil
	}
	size := int64(pkt.Size())
	if size != dir.lastSize {
		dir.lastSize = size
		dir.lastTx = time.Duration(size * 8 * int64(time.Second) / l.bandwidth)
	}
	dir.busyUntil = start + dir.lastTx
	dir.meter.Add(now, size)
	if sh.bus.Active() {
		emitMedium(sh, obs.KindEnqueue, from, pkt, "")
	}

	arrive := dir.busyUntil + l.delay + extra
	dsh := dst.Node.sh
	if dsh != sh {
		// Cross-shard: the outbox is the delivery path (drained in
		// canonical order at the next barrier; seq assigned then).
		sh.out[dsh.id] = append(sh.out[dsh.id], xmsg{at: arrive, pkt: pkt, ifc: dst})
		return
	}
	sh.seq++
	if extra > 0 {
		// A chaos-delayed copy may arrive out of FIFO order relative to
		// the ring; schedule it as its own event, exactly as before.
		sh.queue.push(event{at: arrive, seq: sh.seq, kind: evReceive, pkt: pkt, ifc: dst})
		return
	}
	// Batched path: park the delivery in the direction's ring; the
	// queue carries one event per direction, keyed by the ring head's
	// original (at, seq).
	dir.pend = append(dir.pend, pending{at: arrive, seq: sh.seq, pkt: pkt})
	if !dir.inFlight {
		dir.inFlight = true
		sh.queue.push(event{at: arrive, seq: sh.seq, kind: evLinkDeliver, ifc: dst})
	}
}

// deliverBatch dispatches the head of this interface's pending-delivery
// ring, then either chains straight into the next delivery (when it
// precedes everything else queued on the shard — the fan-out storm
// case, where the whole burst drains in one dispatch) or reschedules
// one queue event carrying the next head's original (at, seq). The
// chain respects sh.limit (window end / deadline) so the PDES barrier
// and deadline semantics are untouched, and is disabled under event
// budgets so RunBounded counts like the unbatched engine.
func (i *Iface) deliverBatch(sh *shard) {
	d := i.rxDir
	for {
		p := d.pend[d.head]
		d.pend[d.head] = pending{}
		d.head++
		sh.now = p.at
		sh.execSeq = p.seq
		i.Node.Receive(p.pkt, i)
		if d.head == len(d.pend) {
			d.pend = d.pend[:0]
			d.head = 0
			d.inFlight = false
			return
		}
		n := &d.pend[d.head]
		if sh.chainOK && n.at < sh.limit {
			if sh.queue.len() == 0 {
				sh.chained++
				continue
			}
			if top := sh.queue.min(); n.at < top.at || (n.at == top.at && n.seq < top.seq) {
				sh.chained++
				continue
			}
		}
		sh.queue.push(event{at: n.at, seq: n.seq, kind: evLinkDeliver, ifc: i})
		return
	}
}

// ---------------------------------------------------------------------------
// Shared segment

// Segment is a shared broadcast domain: every transmitted frame reaches
// every other attached interface; all senders share the capacity. Frames
// addressed to other hosts reach a node only if its interface is
// promiscuous or the node forwards traffic (routers).
type Segment struct {
	sim        *Simulator
	Name       string
	bandwidth  int64
	delay      time.Duration
	queueLimit int64

	busyUntil    time.Duration
	meter        *RateMeter
	dropped      int64 // queue-overflow drops
	faultDropped int64 // chaos-injected drops
	ifaces       []*Iface

	// Serialization-time memo (same exact-division contract as
	// direction.lastSize/lastTx).
	lastSize int64
	lastTx   time.Duration
}

var _ Medium = (*Segment)(nil)

// NewSegment creates a shared segment with the given capacity. Segments
// are never shard boundaries: every attached node ends up in one island
// (the shared busyUntil state must stay on one shard).
func NewSegment(sim *Simulator, name string, cfg LinkConfig) *Segment {
	sim.assertMutable()
	cfg.fill()
	seg := &Segment{
		sim: sim, Name: name, bandwidth: cfg.Bandwidth, delay: cfg.Delay,
		queueLimit: cfg.QueueLimit, meter: NewRateMeter(cfg.Window),
	}
	sim.segs = append(sim.segs, seg)
	return seg
}

// Attach connects a node to the segment and returns the new interface.
func (s *Segment) Attach(n *Node) *Iface {
	s.sim.assertMutable()
	ifc := &Iface{Node: n, Name: fmt.Sprintf("%s@%s", n.Name, s.Name), medium: s}
	s.ifaces = append(s.ifaces, ifc)
	n.addIface(ifc)
	return ifc
}

// Bandwidth implements Medium.
func (s *Segment) Bandwidth() int64 { return s.bandwidth }

// MeterFor implements Medium: segment load is shared, so every attached
// interface observes the same meter.
func (s *Segment) MeterFor(*Iface) *RateMeter { return s.meter }

// Dropped returns frames dropped due to backlog on the shared medium
// (chaos-injected drops are counted separately; see FaultDropped).
func (s *Segment) Dropped() int64 { return s.dropped }

// FaultDropped returns frames dropped by injected faults on the shared
// medium.
func (s *Segment) FaultDropped() int64 { return s.faultDropped }

// faultDrop implements Medium.
func (s *Segment) faultDrop(*Iface) { s.faultDropped++ }

// Transmit implements Medium: consult the fault layer if one is
// installed, then one shared serialization resource (approximating
// CSMA/CD without collisions), then broadcast delivery.
func (s *Segment) Transmit(from *Iface, pkt *Packet) {
	if from.fault == nil {
		s.transmit(from, pkt, 0)
		return
	}
	pkt, dup, delay, ok := applyFault(s, from, pkt)
	if !ok {
		return
	}
	s.transmit(from, pkt, delay)
	for k := 0; k < dup; k++ {
		s.transmit(from, pkt.Clone(), delay)
	}
}

func (s *Segment) transmit(from *Iface, pkt *Packet, extra time.Duration) {
	// All of a segment's attachments live on one island (segments are
	// never boundaries), so the shared busyUntil/meter state is only
	// touched by that island's shard.
	sh := from.Node.sh
	now := sh.now
	backlogBits := int64(0)
	if s.busyUntil > now {
		backlogBits = int64(s.busyUntil-now) * s.bandwidth / int64(time.Second)
	}
	if backlogBits/8 > s.queueLimit {
		s.dropped++
		if sh.bus.Active() {
			emitMedium(sh, obs.KindDrop, from, pkt, "queue")
		}
		return
	}
	start := now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	size := int64(pkt.Size())
	if size != s.lastSize {
		s.lastSize = size
		s.lastTx = time.Duration(size * 8 * int64(time.Second) / s.bandwidth)
	}
	s.busyUntil = start + s.lastTx
	s.meter.Add(now, size)
	if sh.bus.Active() {
		emitMedium(sh, obs.KindEnqueue, from, pkt, "")
	}

	arrive := s.busyUntil + s.delay + extra
	// Broadcast delivery shares one packet pointer among all receivers,
	// so with more than one the packet can no longer be exclusively
	// owned by any of them (see Packet ownership).
	receivers := 0
	for _, ifc := range s.ifaces {
		if ifc != from && ifc.wantsFrame(pkt) {
			receivers++
		}
	}
	if receivers > 1 {
		pkt.Disown()
	}
	for _, ifc := range s.ifaces {
		if ifc == from || !ifc.wantsFrame(pkt) {
			continue
		}
		sh.atReceive(arrive, pkt, ifc)
	}
}

// wantsFrame is the NIC filter: promiscuous interfaces and forwarding
// nodes accept everything; hosts accept frames addressed to them,
// multicast for joined groups, and broadcast.
func (i *Iface) wantsFrame(pkt *Packet) bool {
	if i.Promisc || i.Node.Forwarding {
		return true
	}
	dst := pkt.IP.Dst
	switch {
	case dst == i.Node.Addr:
		return true
	case dst.IsMulticast():
		return i.Node.joined[dst]
	case dst == 0xFFFFFFFF:
		return true
	default:
		return false
	}
}
