package netsim

import (
	"strings"
	"testing"
	"time"

	"planp.dev/planp/internal/obs"
)

// runObserved drives the mk topology with a mixed workload under a
// given seed and returns the full event trace plus the metric render.
func runObserved(t *testing.T, seed int64) (events []string, metrics string) {
	t.Helper()
	sim := NewSimulator(seed)
	a := NewNode(sim, "a", MustAddr("10.0.0.1"))
	r := NewNode(sim, "r", MustAddr("10.0.0.254"))
	b := NewNode(sim, "b", MustAddr("10.0.1.1"))
	r.Forwarding = true
	la := Connect(sim, a, r, LinkConfig{Bandwidth: 1_000_000, QueueLimit: 1024})
	lb := Connect(sim, r, b, LinkConfig{Bandwidth: 1_000_000, QueueLimit: 1024})
	a.SetDefaultRoute(la.a)
	r.AddRoute(a.Addr, la.b)
	r.AddRoute(b.Addr, lb.a)
	b.SetDefaultRoute(lb.b)
	b.BindUDP(9, func(*Packet) {})

	sim.Events().Subscribe(obs.Func(func(ev obs.Event) {
		events = append(events, ev.String())
	}))

	// Burst enough packets to overflow the 4-deep queue (drops), plus
	// one packet to an unbound port (no-binding) and one unroutable
	// destination (no-route), so several event kinds appear.
	for i := 0; i < 8; i++ {
		a.Send(NewUDP(a.Addr, b.Addr, 1000, 9, make([]byte, 512)))
	}
	// After the burst drains: one packet to an unbound port and one to
	// an unroutable destination, so the node-level drop reasons appear
	// too (not just queue overflow).
	sim.At(100*time.Millisecond, func() {
		a.Send(NewUDP(a.Addr, b.Addr, 1000, 7, nil))
		a.Send(NewUDP(a.Addr, MustAddr("10.9.9.9"), 1, 1, nil))
	})
	sim.Run()
	return events, sim.Metrics().Render()
}

func TestEventStreamDeterministicUnderFixedSeed(t *testing.T) {
	ev1, m1 := runObserved(t, 42)
	ev2, m2 := runObserved(t, 42)
	if len(ev1) == 0 {
		t.Fatal("no events published")
	}
	if strings.Join(ev1, "\n") != strings.Join(ev2, "\n") {
		t.Error("two runs with the same seed produced different event streams")
	}
	if m1 != m2 {
		t.Errorf("metric renders differ:\n%s\n--\n%s", m1, m2)
	}
	// The trace must contain every substrate-level kind the workload
	// provokes.
	joined := strings.Join(ev1, "\n")
	for _, kind := range []string{"enqueue", "forward", "deliver", "drop"} {
		if !strings.Contains(joined, kind) {
			t.Errorf("trace missing %q events:\n%s", kind, joined)
		}
	}
	for _, reason := range []string{"queue", "no-binding"} {
		if !strings.Contains(joined, reason) {
			t.Errorf("trace missing drop reason %q", reason)
		}
	}
}

func TestEventsMatchStatsSnapshot(t *testing.T) {
	sim, a, r, b := mk(t)
	var counts obs.CountingSink
	sim.Events().Subscribe(&counts)
	b.BindUDP(9, func(*Packet) {})
	for i := 0; i < 5; i++ {
		a.Send(NewUDP(a.Addr, b.Addr, 1000, 9, []byte("x")))
	}
	sim.Run()
	if got := counts.Count(obs.KindForward); got != int64(r.Stats().ForwardedPkts) {
		t.Errorf("forward events %d != router forwarded %d", got, r.Stats().ForwardedPkts)
	}
	if got := counts.Count(obs.KindDeliver); got != int64(b.Stats().DeliveredPkts) {
		t.Errorf("deliver events %d != delivered %d", got, b.Stats().DeliveredPkts)
	}
	if counts.Count(obs.KindDrop) != 0 {
		t.Errorf("unexpected drops: %d", counts.Count(obs.KindDrop))
	}
}

func TestNodeStatsFromRegistry(t *testing.T) {
	sim, a, _, b := mk(t)
	b.BindUDP(9, func(*Packet) {})
	a.Send(NewUDP(a.Addr, b.Addr, 1000, 9, []byte("abc")))
	sim.Run()
	// The Stats() snapshot and the registry must agree: they are the
	// same instruments.
	snap := sim.Metrics().Snapshot()
	if got := snap["node.b.delivered_pkts"]; got != int64(b.Stats().DeliveredPkts) {
		t.Errorf("registry delivered %d, snapshot %d", got, b.Stats().DeliveredPkts)
	}
	if got := snap["node.a.sent_pkts"]; got != int64(a.Stats().SentPkts) {
		t.Errorf("registry sent %d, snapshot %d", got, a.Stats().SentPkts)
	}
	if a.Stats().SentBytes == 0 {
		t.Error("sent bytes not counted")
	}
}

func TestRunMaxBudget(t *testing.T) {
	sim := NewSimulator(1)
	fired := 0
	for i := 0; i < 10; i++ {
		sim.At(time.Duration(i)*time.Millisecond, func() { fired++ })
	}
	if n := sim.RunMax(3); n != 3 || fired != 3 {
		t.Fatalf("RunMax(3) ran %d events (fired %d)", n, fired)
	}
	if sim.Now() != 2*time.Millisecond {
		t.Errorf("clock advanced to %v, want 2ms (no deadline jump)", sim.Now())
	}
	if n := sim.RunMax(0); n != 7 || fired != 10 {
		t.Errorf("RunMax(0) drain ran %d (fired %d)", n, fired)
	}
}
