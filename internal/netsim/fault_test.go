package netsim

import (
	"testing"
	"time"

	"planp.dev/planp/internal/obs"
	"planp.dev/planp/internal/substrate"
)

// TestLinkFaultDropsDistinctFromQueueDrops is the regression test for
// drop accounting: chaos-injected drops must land in a separate counter
// from queue-overflow drops, with distinct event details — otherwise a
// robustness experiment cannot tell "the network was cut" from "the
// queue was full".
func TestLinkFaultDropsDistinctFromQueueDrops(t *testing.T) {
	sim := NewSimulator(1)
	a := NewNode(sim, "a", MustAddr("10.0.0.1"))
	b := NewNode(sim, "b", MustAddr("10.0.0.2"))
	// A thin link with a tiny queue: a burst overflows it.
	l := Connect(sim, a, b, LinkConfig{Bandwidth: 1_000_000, QueueLimit: 4 << 10})
	a.SetDefaultRoute(l.Ifaces()[0])
	b.SetDefaultRoute(l.Ifaces()[1])

	var sink obs.CountingSink
	details := map[string]int{}
	sim.Events().Subscribe(&sink)
	sim.Events().Subscribe(obs.Func(func(ev obs.Event) {
		if ev.Kind == obs.KindDrop {
			details[ev.Detail]++
		}
	}))

	// Phase 1: no fault installed — a burst forces queue drops only.
	payload := make([]byte, 1000)
	for i := 0; i < 100; i++ {
		a.Send(NewUDP(a.Addr, b.Addr, 1, 2, payload).Own())
	}
	sim.Run()
	out := l.Ifaces()[0]
	queueDrops := l.Dropped(out)
	if queueDrops == 0 {
		t.Fatal("burst did not overflow the queue — the test lost its premise")
	}
	if got := l.FaultDropped(out); got != 0 {
		t.Fatalf("FaultDropped = %d with no fault installed", got)
	}

	// Phase 2: a fault layer that drops everything — fault drops only,
	// queue drops unchanged.
	out.SetFault(func(*substrate.Packet) substrate.FaultAction {
		return substrate.FaultAction{Drop: true}
	})
	for i := 0; i < 10; i++ {
		a.Send(NewUDP(a.Addr, b.Addr, 1, 2, payload).Own())
	}
	sim.Run()
	if got := l.FaultDropped(out); got != 10 {
		t.Errorf("FaultDropped = %d, want 10", got)
	}
	if got := l.Dropped(out); got != queueDrops {
		t.Errorf("queue Dropped moved from %d to %d under fault drops", queueDrops, got)
	}
	if details["fault"] != 10 {
		t.Errorf(`%d KindDrop events with Detail "fault", want 10`, details["fault"])
	}
	if int64(details["queue"]) != queueDrops {
		t.Errorf(`%d KindDrop events with Detail "queue", want %d`, details["queue"], queueDrops)
	}
}

// TestSegmentFaultDropsDistinct mirrors the regression on the shared
// medium.
func TestSegmentFaultDropsDistinct(t *testing.T) {
	sim := NewSimulator(1)
	a := NewNode(sim, "a", MustAddr("10.0.0.1"))
	b := NewNode(sim, "b", MustAddr("10.0.0.2"))
	seg := NewSegment(sim, "lan", LinkConfig{Bandwidth: 10_000_000})
	ia := seg.Attach(a)
	seg.Attach(b)
	a.SetDefaultRoute(ia)

	got := 0
	b.BindUDP(2, func(*Packet) { got++ })

	ia.SetFault(func(*substrate.Packet) substrate.FaultAction {
		return substrate.FaultAction{Drop: true}
	})
	a.Send(NewUDP(a.Addr, b.Addr, 1, 2, []byte("x")).Own())
	sim.Run()
	if got != 0 {
		t.Error("fault-dropped frame was delivered")
	}
	if seg.FaultDropped() != 1 || seg.Dropped() != 0 {
		t.Errorf("FaultDropped = %d, Dropped = %d; want 1, 0", seg.FaultDropped(), seg.Dropped())
	}

	ia.SetFault(nil)
	a.Send(NewUDP(a.Addr, b.Addr, 1, 2, []byte("x")).Own())
	sim.Run()
	if got != 1 {
		t.Errorf("delivered %d after clearing fault, want 1", got)
	}
}

// TestFaultDelayAndDuplicate covers the remaining verdict fields on the
// link medium: injected latency shifts arrival, duplication multiplies
// delivery, corruption flips exactly one payload bit on a private copy.
func TestFaultDelayAndDuplicate(t *testing.T) {
	sim := NewSimulator(1)
	a := NewNode(sim, "a", MustAddr("10.0.0.1"))
	b := NewNode(sim, "b", MustAddr("10.0.0.2"))
	l := Connect(sim, a, b, LinkConfig{Bandwidth: 10_000_000})
	a.SetDefaultRoute(l.Ifaces()[0])
	b.SetDefaultRoute(l.Ifaces()[1])

	var arrivals []time.Duration
	var payloads [][]byte
	b.BindUDP(2, func(p *Packet) {
		arrivals = append(arrivals, sim.Now())
		payloads = append(payloads, p.Payload)
	})

	// Baseline latency.
	a.Send(NewUDP(a.Addr, b.Addr, 1, 2, []byte{0x00}).Own())
	sim.Run()
	base := arrivals[0]

	// +50ms injected delay, one duplicate, one corrupted bit.
	l.Ifaces()[0].SetFault(func(*substrate.Packet) substrate.FaultAction {
		return substrate.FaultAction{Delay: 50 * time.Millisecond, Dup: 1, Corrupt: true, CorruptBit: 3}
	})
	orig := []byte{0x00}
	a.Send(NewUDP(a.Addr, b.Addr, 1, 2, orig).Own())
	sim.Run()

	if len(arrivals) != 3 {
		t.Fatalf("delivered %d packets total, want 3 (baseline + original + duplicate)", len(arrivals))
	}
	for _, at := range arrivals[1:] {
		if d := at - base; d < 50*time.Millisecond {
			t.Errorf("faulted packet arrived %v after baseline, want >= 50ms", d)
		}
	}
	for _, p := range payloads[1:] {
		if p[0] != 0x08 {
			t.Errorf("corrupted payload byte %#02x, want %#02x (bit 3 flipped)", p[0], 0x08)
		}
	}
	if orig[0] != 0x00 {
		t.Error("corruption wrote through the sender's payload — must deep-copy")
	}
}

// TestNodeCrashRestart: a crashed node blackholes traffic and loses its
// processor; a restarted node forwards again, bare.
func TestNodeCrashRestart(t *testing.T) {
	sim, a, r, b := mk(t)
	delivered := 0
	b.BindUDP(9, func(*Packet) { delivered++ })

	send := func() {
		a.Send(NewUDP(a.Addr, b.Addr, 1000, 9, []byte("x")).Own())
		sim.Run()
	}

	r.SetProcessor(procFunc(func(*Packet, substrate.Iface) bool { return false })) // passthrough
	send()
	if delivered != 1 {
		t.Fatalf("delivered %d before crash, want 1", delivered)
	}

	r.Crash()
	if r.CurrentProcessor() != nil {
		t.Error("crash kept the installed processor — ASP state must be lost")
	}
	send()
	if delivered != 1 {
		t.Fatalf("delivered %d through a crashed router, want still 1", delivered)
	}
	drops := r.Stats().DroppedPkts
	if drops == 0 {
		t.Error("crashed router counted no drops")
	}

	r.Restart()
	send()
	if delivered != 2 {
		t.Fatalf("delivered %d after restart, want 2", delivered)
	}
}
