// Nodes: hosts and routers. A node owns interfaces, a static routing
// table, multicast group state, local application bindings, and an
// optional PLAN-P processing hook (the IP/PLAN-P layer of figure 1,
// provided by internal/planprt).
package netsim

import (
	"fmt"
	"time"

	"planp.dev/planp/internal/obs"
	"planp.dev/planp/internal/substrate"
)

// Processor and AppFunc are the substrate hook types (see substrate.go
// for the aliases and substrate.Processor for the contract).

// appKey identifies a local transport binding.
type appKey struct {
	proto uint8
	port  uint16
}

// Stats is a point-in-time snapshot of a node's traffic counters,
// returned by Node.Stats(). The live counters themselves live in the
// simulation's metrics registry under "node.<name>.*".
type Stats struct {
	ReceivedPkts  int64
	ReceivedBytes int64
	SentPkts      int64
	SentBytes     int64
	ForwardedPkts int64
	DeliveredPkts int64
	DroppedPkts   int64 // TTL expiry, no route, no binding
}

// nodeCounters holds the node's registry-backed instruments, resolved
// once at construction so the packet hot path never does a name lookup.
type nodeCounters struct {
	rxPkts, rxBytes *obs.Counter
	txPkts, txBytes *obs.Counter
	fwdPkts         *obs.Counter
	dlvPkts         *obs.Counter
	dropPkts        *obs.Counter
}

func newNodeCounters(reg *obs.Registry, name string) nodeCounters {
	pre := "node." + name + "."
	return nodeCounters{
		rxPkts:   reg.Counter(pre + "received_pkts"),
		rxBytes:  reg.Counter(pre + "received_bytes"),
		txPkts:   reg.Counter(pre + "sent_pkts"),
		txBytes:  reg.Counter(pre + "sent_bytes"),
		fwdPkts:  reg.Counter(pre + "forwarded_pkts"),
		dlvPkts:  reg.Counter(pre + "delivered_pkts"),
		dropPkts: reg.Counter(pre + "dropped_pkts"),
	}
}

// Node is a host or router.
type Node struct {
	Name string
	Addr Addr
	sim  *Simulator
	sh   *shard // owning shard (shard 0 until a sharded run seals)
	ix   int    // creation index (island partitioning)
	env  nodeEnv

	// Forwarding enables router behavior: packets addressed elsewhere
	// are forwarded instead of dropped.
	Forwarding bool

	// PerPacketCPU, when nonzero, serializes received-packet processing
	// through the node's CPU at this cost per packet. This is how the
	// HTTP experiment models the gateway as a contention point (§3.2):
	// throughput caps at 1/PerPacketCPU packets per second.
	PerPacketCPU time.Duration
	cpuBusyUntil time.Duration

	// Processor, when set, is the downloaded PLAN-P layer.
	Processor Processor

	// down marks a crashed node (see Crash/Restart): all traffic
	// through it is discarded until restart.
	down bool

	ifaces    []*Iface
	subIfaces []substrate.Iface // same interfaces, substrate-typed (Interfaces())
	routes    map[Addr]*Iface   // host routes
	defaultIf *Iface            // default route
	mroutes   map[Addr][]*Iface // multicast forwarding: group -> out ifaces
	joined    map[Addr]bool     // locally joined multicast groups
	apps      map[appKey]AppFunc
	rawApps   []AppFunc // receive every locally delivered packet
	taps      []AppFunc // observe every packet seen by the node

	// Single-entry lookup caches for the per-packet map lookups: the
	// unicast route, the multicast fan-out slice, and the local app
	// binding. Streams hit the same destination back to back, so one
	// entry removes the map hash from the steady-state forward path.
	// Mutating the underlying tables invalidates the caches.
	cacheDst   Addr
	cacheIfc   *Iface
	cacheMDst  Addr
	cacheMOuts []*Iface
	cacheApp   appKey
	cacheAppFn AppFunc

	ct nodeCounters

	// pc buffers counter increments between registry flushes: the hot
	// path does plain adds (this node is only ever touched by its
	// owning shard) and flushCounters folds the deltas into the atomic
	// registry instruments at run/window end. Stats() folds pc in, so
	// reads are exact at any time from the owning goroutine.
	pc     Stats
	dirtyC bool

	ipID uint32
}

// NewNode registers a node with the simulator. Names and addresses must
// be unique.
func NewNode(sim *Simulator, name string, addr Addr) *Node {
	sim.assertMutable()
	if sim.nodes[addr] != nil {
		panic(fmt.Sprintf("netsim: duplicate node address %s", addr))
	}
	if sim.nameIx[name] != nil {
		panic(fmt.Sprintf("netsim: duplicate node name %q", name))
	}
	n := &Node{
		Name: name, Addr: addr, sim: sim,
		sh:      sim.shards[0],
		ix:      len(sim.order),
		routes:  map[Addr]*Iface{},
		mroutes: map[Addr][]*Iface{},
		joined:  map[Addr]bool{},
		apps:    map[appKey]AppFunc{},
		ct:      newNodeCounters(sim.reg, name),
	}
	n.env.n = n
	sim.order = append(sim.order, n)
	sim.nodes[addr] = n
	sim.nameIx[name] = n
	return n
}

// Sim returns the owning simulator.
func (n *Node) Sim() *Simulator { return n.sim }

// Stats returns a snapshot of the node's traffic counters: the
// registry values plus any deltas still buffered on the node (zero
// outside a run — runs flush at their end).
func (n *Node) Stats() Stats {
	return Stats{
		ReceivedPkts:  n.ct.rxPkts.Value() + n.pc.ReceivedPkts,
		ReceivedBytes: n.ct.rxBytes.Value() + n.pc.ReceivedBytes,
		SentPkts:      n.ct.txPkts.Value() + n.pc.SentPkts,
		SentBytes:     n.ct.txBytes.Value() + n.pc.SentBytes,
		ForwardedPkts: n.ct.fwdPkts.Value() + n.pc.ForwardedPkts,
		DeliveredPkts: n.ct.dlvPkts.Value() + n.pc.DeliveredPkts,
		DroppedPkts:   n.ct.dropPkts.Value() + n.pc.DroppedPkts,
	}
}

// touch registers the node on its shard's dirty list the first time a
// buffered counter moves between flushes.
func (n *Node) touch() {
	if !n.dirtyC {
		n.dirtyC = true
		n.sh.dirty = append(n.sh.dirty, n)
	}
}

// flushCounters folds the buffered deltas into the registry's atomic
// instruments (the metrics readers' race-free view).
func (n *Node) flushCounters() {
	p := &n.pc
	if p.ReceivedPkts != 0 {
		n.ct.rxPkts.Add(p.ReceivedPkts)
		n.ct.rxBytes.Add(p.ReceivedBytes)
	}
	if p.SentPkts != 0 {
		n.ct.txPkts.Add(p.SentPkts)
		n.ct.txBytes.Add(p.SentBytes)
	}
	if p.ForwardedPkts != 0 {
		n.ct.fwdPkts.Add(p.ForwardedPkts)
	}
	if p.DeliveredPkts != 0 {
		n.ct.dlvPkts.Add(p.DeliveredPkts)
	}
	if p.DroppedPkts != 0 {
		n.ct.dropPkts.Add(p.DroppedPkts)
	}
	*p = Stats{}
	n.dirtyC = false
}

// drop counts a dropped packet and publishes the drop event with the
// given reason (a static string: "ttl", "no-route", "no-binding").
func (n *Node) drop(pkt *Packet, reason string) {
	n.pc.DroppedPkts++
	n.touch()
	if n.sh.bus.Active() {
		n.emit(KindDrop, pkt, reason)
	}
}

// emit publishes one packet event for this node on its shard's bus
// (the global bus in single-shard runs). Callers on hot paths guard
// with n.sh.bus.Active() so the Event is never built when nobody
// listens.
func (n *Node) emit(kind obs.Kind, pkt *Packet, detail string) {
	n.sh.bus.Publish(obs.Event{
		Kind: kind, At: n.sh.now, Node: n.Name,
		Src: uint32(pkt.IP.Src), Dst: uint32(pkt.IP.Dst),
		Size: pkt.Size(), Detail: detail,
	})
}

// Event kind aliases so in-package call sites read naturally.
const (
	KindEnqueue = obs.KindEnqueue
	KindDrop    = obs.KindDrop
	KindForward = obs.KindForward
	KindDeliver = obs.KindDeliver
)

func (n *Node) addIface(i *Iface) {
	n.ifaces = append(n.ifaces, i)
	n.subIfaces = append(n.subIfaces, i)
}

// Ifaces returns the node's interfaces.
func (n *Node) Ifaces() []*Iface { return n.ifaces }

// AddRoute installs a host route: traffic to dst leaves via ifc.
func (n *Node) AddRoute(dst Addr, ifc *Iface) {
	n.routes[dst] = ifc
	n.cacheIfc = nil
}

// SetDefaultRoute installs the default route.
func (n *Node) SetDefaultRoute(ifc *Iface) {
	n.defaultIf = ifc
	n.cacheIfc = nil
}

// RouteTo resolves the outgoing interface for dst (nil if unroutable).
// For multicast groups it returns the first multicast route, which is
// the interface whose load the adaptation primitives measure.
func (n *Node) RouteTo(dst Addr) *Iface {
	if dst == n.cacheDst && n.cacheIfc != nil {
		return n.cacheIfc
	}
	ifc := n.routeSlow(dst)
	if ifc != nil {
		n.cacheDst, n.cacheIfc = dst, ifc
	}
	return ifc
}

func (n *Node) routeSlow(dst Addr) *Iface {
	if dst.IsMulticast() {
		if m := n.mroutes[dst]; len(m) > 0 {
			return m[0]
		}
		return n.defaultIf
	}
	if ifc, ok := n.routes[dst]; ok {
		return ifc
	}
	return n.defaultIf
}

// TransmitFrom routes pkt out of any interface except in, reporting
// whether it was sent. It is the PLAN-P layer's OnRemote transmission
// path: the program has already decided the packet's fate, so no TTL
// handling happens here. in is substrate-typed so processors written
// against the abstract substrate can pass their incoming interface
// straight through; nil means no exclusion.
func (n *Node) TransmitFrom(pkt *Packet, in substrate.Iface) bool {
	inIfc, _ := in.(*Iface)
	return n.transmit(pkt, inIfc)
}

// AddMulticastRoute makes this node forward group traffic out ifc
// (routers on the multicast tree).
func (n *Node) AddMulticastRoute(group Addr, ifc *Iface) {
	n.mroutes[group] = append(n.mroutes[group], ifc)
	n.cacheIfc = nil
	n.cacheMOuts = nil
}

// JoinGroup subscribes the node to a multicast group for local delivery.
func (n *Node) JoinGroup(group Addr) { n.joined[group] = true }

// LeaveGroup unsubscribes the node.
func (n *Node) LeaveGroup(group Addr) { delete(n.joined, group) }

// BindUDP delivers local UDP traffic for port to fn.
func (n *Node) BindUDP(port uint16, fn AppFunc) {
	n.apps[appKey{ProtoUDP, port}] = fn
	n.cacheAppFn = nil
}

// BindTCP delivers local TCP traffic for port to fn.
func (n *Node) BindTCP(port uint16, fn AppFunc) {
	n.apps[appKey{ProtoTCP, port}] = fn
	n.cacheAppFn = nil
}

// BindRaw receives every packet delivered locally regardless of port
// (after specific bindings).
func (n *Node) BindRaw(fn AppFunc) { n.rawApps = append(n.rawApps, fn) }

// Tap observes every packet the node receives from the network,
// including transit traffic (monitoring tools; PLAN-P programs should
// use Processor instead).
func (n *Node) Tap(fn AppFunc) { n.taps = append(n.taps, fn) }

// NextIPID returns a fresh IP identification value for originated
// packets.
func (n *Node) NextIPID() uint32 {
	n.ipID++
	return n.ipID
}

// Send originates pkt from this node: local destinations deliver
// directly, everything else routes out an interface. Locally originated
// packets do not pass through the local PLAN-P layer (the layer
// processes network traffic, figure 1).
func (n *Node) Send(pkt *Packet) {
	// A crashed node originates nothing; application timers that fire
	// while it is down lose their packets.
	if n.down {
		n.drop(pkt, "crashed")
		return
	}
	if pkt.IP.ID == 0 {
		pkt.IP.ID = n.NextIPID()
	}
	n.pc.SentPkts++
	n.pc.SentBytes += int64(pkt.Size())
	n.touch()
	if pkt.IP.Dst == n.Addr {
		n.deliverLocal(pkt)
		return
	}
	if !n.transmit(pkt, nil) {
		n.drop(pkt, "no-route")
	}
}

// transmit routes pkt out (excluding the incoming interface for
// multicast and split-horizon suppression) and reports whether the
// packet was sent anywhere.
func (n *Node) transmit(pkt *Packet, in *Iface) bool {
	if dst := pkt.IP.Dst; dst.IsMulticast() {
		routes := n.cacheMOuts
		if dst != n.cacheMDst || routes == nil {
			routes = n.mroutes[dst]
			if routes != nil {
				n.cacheMDst, n.cacheMOuts = dst, routes
			}
		}
		// Multicast fan-out shares one packet pointer across the outgoing
		// media, so with more than one destination nobody downstream may
		// reuse it in place.
		if pkt.Owned() {
			outs := 0
			for _, ifc := range routes {
				if ifc != in {
					outs++
				}
			}
			if outs > 1 {
				pkt.Disown()
			}
		}
		sent := false
		for _, ifc := range routes {
			if ifc == in {
				continue
			}
			ifc.Send(pkt)
			sent = true
		}
		// Hosts originating multicast without mroutes use the default
		// interface.
		if !sent && in == nil {
			if ifc := n.defaultIf; ifc != nil {
				ifc.Send(pkt)
				sent = true
			}
		}
		return sent
	}
	ifc := n.RouteTo(pkt.IP.Dst)
	if ifc == nil || ifc == in {
		return false
	}
	ifc.Send(pkt)
	return true
}

// Crash takes the node down (substrate.Crasher): until Restart, every
// packet it receives or originates is discarded (counted as drops with
// Detail "crashed") and the installed PLAN-P processor is removed — the
// state loss of a killed daemon. Routes, bindings, and multicast state
// survive; they are configuration, not downloaded state.
func (n *Node) Crash() {
	n.down = true
	n.Processor = nil
	n.cpuBusyUntil = 0
}

// Restart brings a crashed node back up, bare: no processor is
// installed until something (a fleet redeploy) downloads one.
func (n *Node) Restart() { n.down = false }

// Down reports whether the node is crashed.
func (n *Node) Down() bool { return n.down }

// Receive is called by media when a packet arrives on ifc. When the
// node models CPU cost, processing is serialized behind earlier packets.
func (n *Node) Receive(pkt *Packet, in *Iface) {
	if n.down {
		n.drop(pkt, "crashed")
		return
	}
	if n.PerPacketCPU > 0 {
		start := n.sh.now
		if n.cpuBusyUntil > start {
			start = n.cpuBusyUntil
		}
		n.cpuBusyUntil = start + n.PerPacketCPU
		n.sh.atReceiveNow(n.cpuBusyUntil, n, pkt, in)
		return
	}
	n.receiveNow(pkt, in)
}

func (n *Node) receiveNow(pkt *Packet, in *Iface) {
	// A crash can land between the CPU-serialization schedule and this
	// post-CPU half; packets caught in that window die with the node.
	if n.down {
		n.drop(pkt, "crashed")
		return
	}
	n.pc.ReceivedPkts++
	n.pc.ReceivedBytes += int64(pkt.Size())
	n.touch()
	if len(n.taps) > 0 {
		// A tap may retain the packet, so it can no longer be reused in
		// place by a downstream forward.
		pkt.Disown()
		for _, tap := range n.taps {
			tap(pkt)
		}
	}
	if n.Processor != nil && n.Processor.Process(pkt, in) {
		return
	}
	n.defaultProcess(pkt, in)
}

// defaultProcess is standard IP behavior: deliver locally, forward if a
// router, drop otherwise.
func (n *Node) defaultProcess(pkt *Packet, in *Iface) {
	dst := pkt.IP.Dst
	switch {
	case dst == n.Addr || dst == 0xFFFFFFFF:
		n.deliverLocal(pkt)
	case dst.IsMulticast():
		if n.joined[dst] {
			n.deliverLocal(pkt)
		}
		if n.Forwarding {
			n.forward(pkt, in)
		}
	case n.Forwarding:
		n.forward(pkt, in)
	default:
		n.drop(pkt, "no-route")
	}
}

// DeliverLocal passes pkt up to local applications; used by the PLAN-P
// layer's deliver primitive as well as default processing.
func (n *Node) DeliverLocal(pkt *Packet) { n.deliverLocal(pkt) }

func (n *Node) deliverLocal(pkt *Packet) {
	// Applications may retain delivered packets; the pointer leaves the
	// delivery chain here.
	pkt.Disown()
	n.pc.DeliveredPkts++
	n.touch()
	if n.sh.bus.Active() {
		n.emit(KindDeliver, pkt, "")
	}
	var fn AppFunc
	switch {
	case pkt.TCP != nil:
		fn = n.appLookup(appKey{ProtoTCP, pkt.TCP.DstPort})
	case pkt.UDP != nil:
		fn = n.appLookup(appKey{ProtoUDP, pkt.UDP.DstPort})
	}
	if fn != nil {
		fn(pkt)
		return
	}
	if len(n.rawApps) > 0 {
		for _, raw := range n.rawApps {
			raw(pkt)
		}
		return
	}
	n.drop(pkt, "no-binding") // port unreachable
}

// appLookup resolves a local binding through the single-entry cache.
func (n *Node) appLookup(k appKey) AppFunc {
	if k == n.cacheApp && n.cacheAppFn != nil {
		return n.cacheAppFn
	}
	fn := n.apps[k]
	if fn != nil {
		n.cacheApp, n.cacheAppFn = k, fn
	}
	return fn
}

// Forward applies router forwarding to pkt (TTL decrement and route
// lookup); exported for the PLAN-P layer's fall-through path.
func (n *Node) Forward(pkt *Packet, in *Iface) { n.forward(pkt, in) }

// ---------------------------------------------------------------------------
// substrate.Node
//
// The methods below are the abstract-substrate view of the node: the
// surface internal/planprt (and any other backend-neutral code) talks
// to. Simulation code keeps using the concrete fields and methods
// above; both views share the same state.

// Hostname returns the node's unique name (substrate.Node).
func (n *Node) Hostname() string { return n.Name }

// Address returns the node's address (substrate.Node).
func (n *Node) Address() Addr { return n.Addr }

// Interfaces returns the node's attachment points, substrate-typed
// (substrate.Node). The slice is maintained alongside ifaces so the
// per-packet flood path never converts or allocates.
func (n *Node) Interfaces() []substrate.Iface { return n.subIfaces }

// Route resolves the outgoing interface for dst (substrate.Node). It
// returns an untyped nil when no route exists so backend-neutral
// callers can compare against nil directly.
func (n *Node) Route(dst Addr) substrate.Iface {
	if ifc := n.RouteTo(dst); ifc != nil {
		return ifc
	}
	return nil
}

// SetProcessor installs (or, with nil, removes) the PLAN-P layer
// (substrate.Node).
func (n *Node) SetProcessor(p Processor) { n.Processor = p }

// CurrentProcessor returns the installed PLAN-P layer, or nil
// (substrate.Node).
func (n *Node) CurrentProcessor() Processor { return n.Processor }

// Env returns the node's substrate environment (substrate.Node): a
// shard-local view whose clock, timers, and RNG resolve to the node's
// owning shard at call time. On single-shard simulations it behaves
// exactly like the Simulator itself; on sharded ones it is what keeps
// a node's timers and randomness on the shard that executes the node.
func (n *Node) Env() substrate.Env { return &n.env }

// nodeEnv is the per-node substrate.Env. It delegates through n.sh
// dynamically, so an Env captured before the first run (ASP downloads
// resolve their Env at install time) follows the node to its shard.
type nodeEnv struct{ n *Node }

// Now returns the owning shard's virtual time.
func (e *nodeEnv) Now() time.Duration { return e.n.sh.now }

// After schedules fn on the owning shard, tagged with the node so the
// event migrates with it at seal.
func (e *nodeEnv) After(d time.Duration, fn func()) {
	sh := e.n.sh
	sh.at(sh.now+d, fn, e.n)
}

// Int63n draws from the owning shard's RNG stream.
func (e *nodeEnv) Int63n(v int64) int64 { return e.n.sh.rng.Int63n(v) }

// Events returns the bus this node's publish sites go to: the global
// bus in single-shard runs, the shard-local buffering bus on sharded
// ones (whose events merge into Simulator.Events at each horizon).
// Subscribers that want the merged stream subscribe on the Simulator.
func (e *nodeEnv) Events() *obs.Bus { return e.n.sh.bus }

// Metrics returns the simulation-wide registry (atomic instruments;
// race-free from any shard).
func (e *nodeEnv) Metrics() *obs.Registry { return e.n.sim.reg }

func (n *Node) forward(pkt *Packet, in *Iface) {
	if pkt.IP.TTL <= 1 {
		n.drop(pkt, "ttl")
		return
	}
	// An owned packet's only live reference is this delivery, so the hop
	// copy is elided: decrement TTL in place and send the same packet on.
	// This is the zero-allocation forward path.
	fwd := pkt
	if !pkt.Owned() {
		fwd = pkt.Clone()
	}
	fwd.IP.TTL--
	if n.transmit(fwd, in) {
		n.pc.ForwardedPkts++
		n.touch()
		if n.sh.bus.Active() {
			n.emit(KindForward, fwd, "")
		}
	} else {
		n.drop(fwd, "no-route")
	}
}
