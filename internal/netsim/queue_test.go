package netsim

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// refHeap is a container/heap reference implementation with the exact
// ordering contract the simulator promises — (at, seq) lexicographic —
// used to property-test the inlined 4-ary heap. This is what the event
// queue WAS before the zero-allocation rewrite.
type refEvent struct {
	at  time.Duration
	seq uint64
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// TestEventQueueMatchesReferenceHeap drives the 4-ary queue and the
// reference binary heap through identical randomized push/pop schedules
// and requires identical pop sequences. Timestamps are drawn from a
// tiny range so ties — where FIFO order is the paper-relevant
// property — dominate.
func TestEventQueueMatchesReferenceHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		var q eventQueue
		ref := &refHeap{}
		heap.Init(ref)
		seq := uint64(0)
		for op := 0; op < 1000; op++ {
			if q.len() != ref.Len() {
				t.Fatalf("trial %d: length diverged: %d vs %d", trial, q.len(), ref.Len())
			}
			if q.len() == 0 || rng.Intn(5) < 3 {
				at := time.Duration(rng.Intn(20)) * time.Millisecond
				seq++
				q.push(event{at: at, seq: seq})
				heap.Push(ref, &refEvent{at: at, seq: seq})
			} else {
				got := q.pop()
				want := heap.Pop(ref).(*refEvent)
				if got.at != want.at || got.seq != want.seq {
					t.Fatalf("trial %d: pop (at=%v seq=%d), reference (at=%v seq=%d)",
						trial, got.at, got.seq, want.at, want.seq)
				}
			}
		}
		for q.len() > 0 {
			got := q.pop()
			want := heap.Pop(ref).(*refEvent)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("trial %d drain: pop (at=%v seq=%d), reference (at=%v seq=%d)",
					trial, got.at, got.seq, want.at, want.seq)
			}
		}
	}
}

// TestEventQueueFIFOOnEqualTimes pins the scheduling contract directly:
// events scheduled for the same instant pop in schedule order.
func TestEventQueueFIFOOnEqualTimes(t *testing.T) {
	sim := NewSimulator(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		sim.At(5*time.Millisecond, func() { order = append(order, i) })
	}
	sim.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events ran out of schedule order: %v", order[:i+1])
		}
	}
}

// TestScheduleZeroAllocs is an acceptance gate of the zero-allocation
// rewrite: At/After on a warmed queue must not allocate (the closure is
// pre-created; the event is an inline heap value, not a boxed pointer).
func TestScheduleZeroAllocs(t *testing.T) {
	sim := NewSimulator(1)
	fn := func() {}
	// Grow the queue's backing array past anything the loop needs.
	for i := 0; i < 64; i++ {
		sim.At(sim.Now(), fn)
	}
	sim.Run()
	if n := testing.AllocsPerRun(200, func() {
		sim.At(sim.Now(), fn)
		sim.Run()
	}); n != 0 {
		t.Errorf("At + dispatch allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		sim.After(time.Microsecond, fn)
		sim.Run()
	}); n != 0 {
		t.Errorf("After + dispatch allocates %.1f/op, want 0", n)
	}
}

// TestOwnedForwardZeroAllocs is the other acceptance gate: forwarding
// an exclusively-owned packet through a router to local delivery — the
// unobserved unicast hot path — must not allocate. Ownership lets the
// router reuse the packet in place instead of cloning per hop, and
// typed receive events avoid per-transmit closures.
func TestOwnedForwardZeroAllocs(t *testing.T) {
	sim := NewSimulator(1)
	a := NewNode(sim, "a", MustAddr("10.0.0.1"))
	r := NewNode(sim, "r", MustAddr("10.0.0.254"))
	c := NewNode(sim, "c", MustAddr("10.0.1.1"))
	r.Forwarding = true
	l1 := Connect(sim, a, r, LinkConfig{Bandwidth: 1_000_000_000})
	l2 := Connect(sim, r, c, LinkConfig{Bandwidth: 1_000_000_000})
	a.SetDefaultRoute(l1.Ifaces()[0])
	r.AddRoute(c.Addr, l2.Ifaces()[0])
	c.SetDefaultRoute(l2.Ifaces()[1])
	got := 0
	c.BindUDP(9, func(*Packet) { got++ })

	pkt := NewUDP(a.Addr, c.Addr, 1, 9, make([]byte, 1000))
	runs := 0
	if n := testing.AllocsPerRun(200, func() {
		// Local delivery disowned the packet; this loop is the only
		// remaining reference, so re-owning it each round is sound.
		pkt.IP.TTL = 64
		a.Send(pkt.Own())
		sim.Run()
		runs++
	}); n != 0 {
		t.Errorf("owned forward path allocates %.1f/op, want 0", n)
	}
	if got != runs {
		t.Fatalf("delivered %d of %d", got, runs)
	}
}
