package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

// TestPacketConservation property-checks the simulator's accounting: on
// a two-link chain, every packet offered is either delivered, dropped at
// a queue, or dropped by the router — nothing vanishes, nothing
// duplicates.
func TestPacketConservation(t *testing.T) {
	f := func(seed int64, count uint8, sizeSel uint8, bwSel uint8) bool {
		n := int(count%60) + 1
		size := 100 + int(sizeSel)*7
		bw := int64(500_000) * (1 + int64(bwSel%8))
		sim := NewSimulator(seed)
		a := NewNode(sim, "a", MustAddr("10.0.0.1"))
		r := NewNode(sim, "r", MustAddr("10.0.0.254"))
		b := NewNode(sim, "b", MustAddr("10.0.1.1"))
		r.Forwarding = true
		l1 := Connect(sim, a, r, LinkConfig{Bandwidth: 1_000_000_000})
		l2 := Connect(sim, r, b, LinkConfig{Bandwidth: bw, QueueLimit: 8000})
		a.SetDefaultRoute(l1.Ifaces()[0])
		r.AddRoute(b.Addr, l2.Ifaces()[0])
		b.SetDefaultRoute(l2.Ifaces()[1])

		delivered := 0
		b.BindUDP(9, func(*Packet) { delivered++ })
		for i := 0; i < n; i++ {
			a.Send(NewUDP(a.Addr, b.Addr, 1, 9, make([]byte, size)))
		}
		sim.Run()
		queueDrops := l2.Dropped(l2.Ifaces()[0]) + l1.Dropped(l1.Ifaces()[0])
		total := int64(delivered) + queueDrops + r.Stats().DroppedPkts
		return total == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSegmentConservation mirrors the invariant on a shared segment:
// frames reach exactly the interested hosts.
func TestSegmentConservation(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		n := int(count%40) + 1
		sim := NewSimulator(seed)
		a := NewNode(sim, "a", MustAddr("10.0.0.1"))
		b := NewNode(sim, "b", MustAddr("10.0.0.2"))
		c := NewNode(sim, "c", MustAddr("10.0.0.3"))
		seg := NewSegment(sim, "lan", LinkConfig{Bandwidth: 100_000_000})
		ia := seg.Attach(a)
		seg.Attach(b)
		seg.Attach(c)
		a.SetDefaultRoute(ia)
		gotB, gotC := 0, 0
		b.BindUDP(9, func(*Packet) { gotB++ })
		c.BindUDP(9, func(*Packet) { gotC++ })
		for i := 0; i < n; i++ {
			a.Send(NewUDP(a.Addr, b.Addr, 1, 9, make([]byte, 200)))
		}
		sim.Run()
		// Unicast to b: c (not promiscuous) sees nothing.
		return gotB+int(seg.Dropped()) == n && gotC == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRateMeterNeverExceedsOffered property-checks the meter: measured
// throughput never exceeds what was actually added.
func TestRateMeterNeverExceedsOffered(t *testing.T) {
	f := func(adds []uint16) bool {
		if len(adds) > 200 {
			adds = adds[:200]
		}
		m := NewRateMeter(100 * time.Millisecond)
		var total int64
		at := time.Duration(0)
		for _, a := range adds {
			n := int64(a % 2000)
			m.Add(at, n)
			total += n
			at += time.Millisecond
		}
		rate := m.BitsPerSecond(at)
		if rate < 0 {
			return false
		}
		// Upper bound: everything added, compressed into the meter's
		// effective 90ms window.
		return rate <= total*8*int64(time.Second)/int64(90*time.Millisecond)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSimulatorDeterminism: identical seeds and workloads produce
// identical delivery timelines.
func TestSimulatorDeterminism(t *testing.T) {
	runOnce := func() []time.Duration {
		sim := NewSimulator(99)
		a := NewNode(sim, "a", MustAddr("10.0.0.1"))
		b := NewNode(sim, "b", MustAddr("10.0.0.2"))
		l := Connect(sim, a, b, LinkConfig{Bandwidth: 2_000_000})
		a.SetDefaultRoute(l.Ifaces()[0])
		var times []time.Duration
		b.BindUDP(9, func(*Packet) { times = append(times, sim.Now()) })
		for i := 0; i < 30; i++ {
			size := 100 + sim.Rand().Intn(900)
			sim.At(time.Duration(i)*3*time.Millisecond, func() {
				a.Send(NewUDP(a.Addr, b.Addr, 1, 9, make([]byte, size)))
			})
		}
		sim.Run()
		return times
	}
	t1, t2 := runOnce(), runOnce()
	if len(t1) != len(t2) {
		t.Fatalf("delivery counts differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("timeline diverges at %d: %v vs %v", i, t1[i], t2[i])
		}
	}
}
