// Substrate integration: netsim is the reference implementation of the
// internal/substrate interfaces — the deterministic backend every paper
// experiment replays on byte-identically.
//
// The packet model, addressing, and rate metering moved to
// internal/substrate when the ASP runtime was decoupled from the
// simulator; the aliases below keep netsim's historical names working
// (simulation code overwhelmingly says netsim.Packet, netsim.Addr, ...)
// and guarantee the types are IDENTICAL across backends, not parallel
// copies.
package netsim

import (
	"planp.dev/planp/internal/substrate"
)

// Shared substrate types under their historical netsim names.
type (
	// Packet is one datagram.
	Packet = substrate.Packet
	// IPHeader is the network-layer header.
	IPHeader = substrate.IPHeader
	// TCPHeader is the (simplified) TCP transport header.
	TCPHeader = substrate.TCPHeader
	// UDPHeader is the UDP transport header.
	UDPHeader = substrate.UDPHeader
	// Addr is a packed big-endian IPv4-style address.
	Addr = substrate.Addr
	// Processor is the PLAN-P layer hook (see substrate.Processor for
	// the retention/mutation contract).
	Processor = substrate.Processor
	// AppFunc receives packets delivered to a local application binding.
	AppFunc = substrate.AppFunc
	// RateMeter measures windowed throughput.
	RateMeter = substrate.RateMeter
)

// Shared constants.
const (
	ProtoTCP = substrate.ProtoTCP
	ProtoUDP = substrate.ProtoUDP

	IPHeaderLen  = substrate.IPHeaderLen
	TCPHeaderLen = substrate.TCPHeaderLen
	UDPHeaderLen = substrate.UDPHeaderLen

	FlagSyn = substrate.FlagSyn
	FlagAck = substrate.FlagAck
	FlagFin = substrate.FlagFin
	FlagRst = substrate.FlagRst
	FlagPsh = substrate.FlagPsh

	// DefaultMeterWindow is the default load-measurement window.
	DefaultMeterWindow = substrate.DefaultMeterWindow
)

// Shared constructors.
var (
	// NewUDP builds a UDP packet.
	NewUDP = substrate.NewUDP
	// NewTCP builds a TCP packet.
	NewTCP = substrate.NewTCP
	// ParseAddr parses a dotted quad.
	ParseAddr = substrate.ParseAddr
	// MustAddr parses a dotted quad or panics.
	MustAddr = substrate.MustAddr
	// NewRateMeter returns a meter with the given window.
	NewRateMeter = substrate.NewRateMeter
)

// Interface satisfaction: the simulator is a substrate environment and
// its nodes are substrate nodes (compile-time checks; the methods live
// in sim.go and node.go).
var (
	_ substrate.Env       = (*Simulator)(nil)
	_ substrate.Node      = (*Node)(nil)
	_ substrate.Iface     = (*Iface)(nil)
	_ substrate.FaultPort = (*Iface)(nil)
	_ substrate.Crasher   = (*Node)(nil)
)
