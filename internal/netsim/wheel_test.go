// Timing-wheel tests: the exact-order property (wheel+heap pops in the
// same (at, seq) order as the pure heap, for schedules spanning every
// wheel level, the overflow horizon, and behind-frontier inserts), the
// on/off pop equivalence, full-simulation on/off byte-identity, and a
// race hammer that keeps the wheel loaded under sharded ingestion.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"planp.dev/planp/internal/obs"
)

// wheelTestSpans stresses each structural regime of the hierarchy: ties
// inside one tick, level 0/1/2 horizons, and far-future overflow that
// must stay in the heap.
var wheelTestSpans = []time.Duration{
	4 << wheelTickShift,                                    // a few ticks: slot ties dominate
	time.Duration(wheelSlots) << wheelTickShift,            // level 0 horizon (~2.1 ms)
	time.Duration(wheelSlots*wheelSlots) << wheelTickShift, // level 1 (~537 ms)
	200 * time.Second,                                      // level 2 (~137 s) + overflow
}

// TestTimerWheelMatchesReferenceHeap is the determinism property test:
// a wheel-enabled timerQueue and the container/heap reference must
// produce identical (at, seq) pop sequences under randomized push/pop
// schedules. Push-heavy phases keep the queue above wheelMinLoad so the
// wheel (not the small-queue bypass) is what's being tested, and pops
// advance the frontiers so later pushes land behind them.
func TestTimerWheelMatchesReferenceHeap(t *testing.T) {
	for trial, span := range wheelTestSpans {
		rng := rand.New(rand.NewSource(int64(41 + trial)))
		q := &timerQueue{wheelOn: true}
		ref := &refHeap{}
		heap.Init(ref)
		seq := uint64(0)
		for op := 0; op < 6000; op++ {
			if q.len() != ref.Len() {
				t.Fatalf("span %v: length diverged: %d vs %d", span, q.len(), ref.Len())
			}
			// 3:2 push:pop bias keeps the population near 1000, far
			// above the bypass threshold.
			if q.len() == 0 || rng.Intn(5) < 3 {
				at := time.Duration(rng.Int63n(int64(span)))
				seq++
				q.push(event{at: at, seq: seq})
				heap.Push(ref, &refEvent{at: at, seq: seq})
			} else {
				if got, want := q.minAt(), (*ref)[0].at; got != want {
					t.Fatalf("span %v: minAt %v, reference %v", span, got, want)
				}
				got := q.pop()
				want := heap.Pop(ref).(*refEvent)
				if got.at != want.at || got.seq != want.seq {
					t.Fatalf("span %v: pop (at=%v seq=%d), reference (at=%v seq=%d)",
						span, got.at, got.seq, want.at, want.seq)
				}
			}
		}
		for q.len() > 0 {
			got := q.pop()
			want := heap.Pop(ref).(*refEvent)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("span %v drain: pop (at=%v seq=%d), reference (at=%v seq=%d)",
					span, got.at, got.seq, want.at, want.seq)
			}
		}
	}
}

// TestTimerWheelOnOffIdenticalPops runs one schedule through a wheeled
// and an unwheeled queue and requires identical pop streams — the
// WithWheel knob is a pure performance switch.
func TestTimerWheelOnOffIdenticalPops(t *testing.T) {
	rng := rand.New(rand.NewSource(1009))
	on := &timerQueue{wheelOn: true}
	off := &timerQueue{wheelOn: false}
	seq := uint64(0)
	for op := 0; op < 5000; op++ {
		if on.len() == 0 || rng.Intn(5) < 3 {
			at := time.Duration(rng.Int63n(int64(600 * time.Millisecond)))
			seq++
			on.push(event{at: at, seq: seq})
			off.push(event{at: at, seq: seq})
		} else {
			a, b := on.pop(), off.pop()
			if a.at != b.at || a.seq != b.seq {
				t.Fatalf("op %d: wheel pop (at=%v seq=%d), heap pop (at=%v seq=%d)",
					op, a.at, a.seq, b.at, b.seq)
			}
		}
	}
	for on.len() > 0 {
		a, b := on.pop(), off.pop()
		if a.at != b.at || a.seq != b.seq {
			t.Fatalf("drain: wheel pop (at=%v seq=%d), heap pop (at=%v seq=%d)",
				a.at, a.seq, b.at, b.seq)
		}
	}
	if off.len() != 0 {
		t.Fatalf("heap queue still holds %d events", off.len())
	}
}

// TestWheelOnOffSimulationIdentical is the end-to-end leg: a sharded
// ring simulation must produce byte-identical event streams, metrics,
// clocks, and deliveries with the wheel on and off (the same diff the
// CI bench-smoke job performs on the experiment binary).
func TestWheelOnOffSimulationIdentical(t *testing.T) {
	p := ringParams{islands: 4, hosts: 2, sends: 12, crossHop: 1}
	run := func(wheel bool, shards int) ringRun {
		var trace []byte
		sim := New(WithSeed(5), WithShards(shards), WithWheel(wheel),
			WithObserver(obs.Func(func(ev obs.Event) {
				trace = append(trace, ev.String()...)
				trace = append(trace, '\n')
			})))
		counters := buildRing(sim, p)
		n := sim.Run()
		out := ringRun{
			events: string(trace), metrics: sim.Metrics().Render(),
			processed: n, now: sim.Now(), shards: sim.ShardCount(),
		}
		for _, c := range counters {
			out.delivered = append(out.delivered, *c)
		}
		return out
	}
	for _, shards := range []int{1, 4} {
		ref := run(false, shards)
		got := run(true, shards)
		diffRuns(t, ref, got, fmt.Sprintf("wheel on vs off, shards=%d", shards))
	}
}

// TestWheelShardedIngestionRace keeps every shard's wheel loaded while
// cross-shard mailboxes, the observability merge, and outside metrics
// snapshots run concurrently — the wheel-specific companion to
// TestCrossShardRace for `go test -race`.
func TestWheelShardedIngestionRace(t *testing.T) {
	p := ringParams{islands: 6, hosts: 3, sends: 30, crossHop: 2}
	var sink obs.CountingSink
	sim := New(WithSeed(17), WithShards(4), WithWheel(true), WithObserver(&sink))
	buildRing(sim, p)
	// Long-horizon timer fans spread across all three wheel levels so
	// cascade drains happen while packets flow.
	for i := 0; i < 400; i++ {
		d := time.Duration(i)*739*time.Microsecond + time.Duration(i*i%997)*time.Nanosecond
		sim.At(d, func() {})
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				sim.Metrics().Snapshot()
			}
		}
	}()
	n := sim.Run()
	close(done)
	if sim.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d, want 4", sim.ShardCount())
	}
	if n == 0 || sink.Total() == 0 {
		t.Fatalf("hammer ran %d events, observer saw %d — workload did not run", n, sink.Total())
	}
}
