// Sharded execution: conservative parallel discrete-event simulation
// (PDES) over the unchanged single-threaded event core.
//
// # Model
//
// A topology is partitioned into ISLANDS: connected components of the
// node graph where ordinary links and segments merge their endpoints
// and only links marked LinkConfig.ShardBoundary may be cut. Islands
// are packed onto min(WithShards(n), islands) shards; each shard owns
// its nodes, its 4-ary event heap, its clock, its sequence counter,
// and its slice of the RNG space, and runs on its own goroutine.
//
// Cross-shard traffic exists only on boundary links, whose propagation
// delay is the PDES lookahead: a window [T, T+L) — L the minimum delay
// of any boundary link that actually crosses shards — can be executed
// by every shard in parallel, because nothing transmitted inside the
// window can arrive at another shard before T+L. At each horizon the
// coordinator drains the per-shard outboxes into the destination
// heaps (source-shard order, FIFO within a source) and merges the
// shards' buffered observability events into the global bus in
// (at, seq, shard) order.
//
// # Determinism contract
//
// One shard IS the legacy engine: same heap, same sequence numbers,
// same RNG stream, same publish sites — byte-identical to every run
// before sharding existed. Topologies without boundary links (every
// paper experiment) collapse to one island and take that path at any
// WithShards(n); the engine refuses to cut where it cannot prove
// determinism rather than racing and hoping.
//
// Across shard counts (1 vs N), output is byte-identical when
//
//   - workload randomness is per-node deterministic (Env.Int63n draws
//     from the executing shard's RNG: a multi-shard run re-slices the
//     stream), and
//   - no event on one shard shares an exact virtual-time tick with a
//     packet arriving from another shard at the same node-set (ties
//     WITHIN an island order identically in both modes; only
//     cross-boundary ties are sensitive to the ingestion sequence).
//
// The city-scale scenario and the property tests stagger phases,
// periods, and link delays so no cross-boundary tick collides; code
// running inside node events must use Node.Env() for time, timers,
// and randomness so work lands on the owning shard.
package netsim

import (
	"math/rand"
	"runtime"
	"sort"
	"time"

	"planp.dev/planp/internal/obs"
	"planp.dev/planp/internal/par"
)

// noHorizon is the window length used when shards share no boundary
// link at all (fully independent islands need no synchronization).
const noHorizon = time.Duration(1) << 60

// maxDuration is the no-deadline chaining limit (see shard.limit).
const maxDuration = time.Duration(1<<63 - 1)

// shard is one event loop: a slice of the topology with its own clock,
// heap, sequence counter, and RNG. Shard 0 doubles as the legacy
// single-threaded engine and the control-plane shard (Simulator.At and
// After schedule here).
type shard struct {
	id  int
	sim *Simulator

	now     time.Duration
	seq     uint64
	execSeq uint64 // seq of the event currently executing (obs merge key)
	queue   timerQueue
	rng     *rand.Rand

	// limit bounds in-dispatch event chaining (batched link delivery):
	// a drained delivery may run immediately only if its time is before
	// limit — the window end on sharded runs, the deadline on legacy
	// runs. chainOK disables chaining entirely when an event budget is
	// active (budgets are counted between dispatches); chained counts
	// the extra deliveries executed inside dispatches so event totals
	// match the unbatched engine exactly.
	limit   time.Duration
	chainOK bool
	chained int

	// dirty lists nodes with buffered counter deltas awaiting a flush
	// to the (atomic) metrics registry; single-writer, owned by this
	// shard's goroutine, flushed at run/window end.
	dirty []*Node

	// bus is where this shard's publish sites go: the simulation's
	// global bus with one shard (direct, zero overhead), a local
	// buffering bus when sharded (merged at each horizon).
	bus *obs.Bus
	buf []bufEvent

	// out[d] is the mailbox of packets this shard transmitted toward
	// shard d during the current window; only the owning shard appends,
	// only the coordinator drains (at the barrier).
	out [][]xmsg

	processed int // events executed in the last window
}

// bufEvent is one buffered observability event, tagged with the
// sequence number of the event that published it so the coordinator
// can merge shard streams in (at, seq, shard) order.
type bufEvent struct {
	ev  obs.Event
	seq uint64
}

// xmsg is one cross-shard packet delivery waiting in an outbox.
type xmsg struct {
	at  time.Duration
	pkt *Packet
	ifc *Iface
}

// shardBuffer redirects a shard's publishes into its buffer; it is the
// sole subscriber of a sharded shard's local bus, so Active() on the
// shard bus mirrors whether the global bus has subscribers.
type shardBuffer struct{ sh *shard }

// OnEvent implements obs.Subscriber.
func (b *shardBuffer) OnEvent(ev obs.Event) {
	b.sh.buf = append(b.sh.buf, bufEvent{ev: ev, seq: b.sh.execSeq})
}

// at schedules fn at absolute time t (clamped to the shard clock),
// tagged with the node it belongs to (nil for control events) so
// pre-seal events migrate to their owner shard.
func (sh *shard) at(t time.Duration, fn func(), n *Node) {
	if t < sh.now {
		t = sh.now
	}
	sh.seq++
	sh.queue.push(event{at: t, seq: sh.seq, fn: fn, node: n})
}

// atReceive schedules delivery of pkt to dst's node at absolute time t.
// Same-shard deliveries go straight onto the heap (the zero-allocation
// hot path, identical to the pre-sharding engine); deliveries to
// another shard park in the outbox until the next horizon. Ownership
// travels with the packet: the barrier is the happens-before edge, and
// a single receiver may still reuse the packet in place.
func (sh *shard) atReceive(t time.Duration, pkt *Packet, dst *Iface) {
	if dsh := dst.Node.sh; dsh != sh {
		sh.out[dsh.id] = append(sh.out[dsh.id], xmsg{at: t, pkt: pkt, ifc: dst})
		return
	}
	if t < sh.now {
		t = sh.now
	}
	sh.seq++
	sh.queue.push(event{at: t, seq: sh.seq, kind: evReceive, pkt: pkt, ifc: dst})
}

// atReceiveNow schedules the post-CPU half of Node.Receive; the node
// already lives on this shard.
func (sh *shard) atReceiveNow(t time.Duration, n *Node, pkt *Packet, in *Iface) {
	if t < sh.now {
		t = sh.now
	}
	sh.seq++
	sh.queue.push(event{at: t, seq: sh.seq, kind: evReceiveNow, node: n, pkt: pkt, ifc: in})
}

// dispatch executes one popped event.
func (sh *shard) dispatch(ev *event) {
	sh.now = ev.at
	sh.execSeq = ev.seq
	switch ev.kind {
	case evFunc:
		ev.fn()
	case evReceive:
		ev.ifc.Node.Receive(ev.pkt, ev.ifc)
	case evReceiveNow:
		ev.node.receiveNow(ev.pkt, ev.ifc)
	case evLinkDeliver:
		ev.ifc.deliverBatch(sh)
	}
}

// flushCounters pushes every dirty node's buffered traffic counters
// into the metrics registry. Called at run/window end by the shard's
// own goroutine (each node belongs to exactly one shard, so buffered
// deltas are single-writer).
func (sh *shard) flushCounters() {
	for i, n := range sh.dirty {
		n.flushCounters()
		sh.dirty[i] = nil
	}
	sh.dirty = sh.dirty[:0]
}

// runLegacy is the pre-sharding event loop, verbatim: process events in
// (at, seq) order until the queue drains, the next event is past the
// deadline, or maxEvents have run. The single-shard engine and every
// existing experiment run through here.
func (sh *shard) runLegacy(deadline time.Duration, hasDeadline bool, maxEvents int) int {
	sh.chained = 0
	sh.chainOK = maxEvents <= 0
	sh.limit = maxDuration
	if hasDeadline {
		sh.limit = deadline + 1 // events AT the deadline still run
	}
	n := 0
	if !hasDeadline && maxEvents <= 0 {
		// The common case (Run()): no per-event bound checks at all.
		for sh.queue.len() > 0 {
			ev := sh.queue.pop()
			sh.dispatch(&ev)
			n++
		}
		sh.flushCounters()
		return n + sh.chained
	}
	for sh.queue.len() > 0 {
		if maxEvents > 0 && n >= maxEvents {
			sh.flushCounters()
			return n
		}
		if hasDeadline && sh.queue.minAt() > deadline {
			break
		}
		ev := sh.queue.pop()
		sh.dispatch(&ev)
		n++
	}
	if hasDeadline && sh.now < deadline {
		sh.now = deadline
	}
	sh.flushCounters()
	return n + sh.chained
}

// runWindow executes every event strictly before end (events scheduled
// mid-window for times inside the window run in the same pass; only
// cross-shard arrivals are barred, by the lookahead argument).
func (sh *shard) runWindow(end time.Duration) {
	sh.chained = 0
	sh.chainOK = true
	sh.limit = end
	n := 0
	for sh.queue.len() > 0 && sh.queue.minAt() < end {
		ev := sh.queue.pop()
		sh.dispatch(&ev)
		n++
	}
	sh.processed = n + sh.chained
	sh.flushCounters()
}

// ---------------------------------------------------------------------------
// Partitioning (seal) and the sharded run loop — coordinator side.

// assertMutable panics on topology mutation after a sharded simulation
// has started: islands, shard assignment, and the horizon are computed
// once at seal. The single-shard engine keeps the legacy permissive
// behavior.
func (s *Simulator) assertMutable() {
	if s.sealed && !s.single {
		panic("netsim: topology is frozen once a sharded simulation has run")
	}
}

// seal partitions the topology on the first run. With one requested
// shard, no boundary links, or a single island it marks the simulation
// single-threaded and changes nothing else.
func (s *Simulator) seal() {
	if s.sealed {
		return
	}
	s.sealed = true
	if s.wantShards <= 1 || len(s.order) < 2 {
		s.single = true
		return
	}

	// Islands: union-find over nodes in creation order; ordinary links
	// and segments merge endpoints, boundary links do not.
	parent := make([]int, len(s.order))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		if ra, rb := find(a), find(b); ra != rb {
			parent[ra] = rb
		}
	}
	for _, l := range s.links {
		if !l.boundary {
			union(l.a.Node.ix, l.b.Node.ix)
		}
	}
	for _, seg := range s.segs {
		for i := 1; i < len(seg.ifaces); i++ {
			union(seg.ifaces[0].Node.ix, seg.ifaces[i].Node.ix)
		}
	}
	islandOf := map[int]int{}
	var islands [][]*Node
	for i, n := range s.order {
		r := find(i)
		gi, ok := islandOf[r]
		if !ok {
			gi = len(islands)
			islandOf[r] = gi
			islands = append(islands, nil)
		}
		islands[gi] = append(islands[gi], n)
	}

	k := s.wantShards
	if k > len(islands) {
		k = len(islands)
	}
	if k <= 1 {
		s.single = true
		return
	}

	// Pack islands onto shards: largest first into the least-loaded
	// shard, ties by discovery order then shard id — deterministic and
	// balanced for the common many-equal-islands case.
	type iref struct{ idx, size int }
	refs := make([]iref, len(islands))
	for i, isl := range islands {
		refs[i] = iref{i, len(isl)}
	}
	sort.SliceStable(refs, func(a, b int) bool { return refs[a].size > refs[b].size })
	load := make([]int, k)
	assign := make([]int, len(islands))
	for _, r := range refs {
		best := 0
		for si := 1; si < k; si++ {
			if load[si] < load[best] {
				best = si
			}
		}
		assign[r.idx] = best
		load[best] += r.size
	}

	// Create shards 1..k-1. Shard 0 keeps the seed RNG (it already made
	// the construction-time draws); the others derive their streams from
	// the seed and shard id.
	sh0 := s.shards[0]
	// Counters buffered during construction (setup-time sends) flush
	// now, while every node still lives on shard 0 — after this, each
	// node's deltas accumulate on its owner shard's dirty list.
	sh0.flushCounters()
	for id := 1; id < k; id++ {
		s.shards = append(s.shards, &shard{
			id:    id,
			sim:   s,
			now:   sh0.now,
			queue: timerQueue{wheelOn: sh0.queue.wheelOn},
			rng:   rand.New(rand.NewSource(s.seed ^ int64(uint64(id)*0x9E3779B97F4A7C15))),
			bus:   &obs.Bus{},
		})
	}
	// Shard 0's publishes must buffer like everyone else's from now on;
	// the horizon merge republishes to the global bus in order.
	sh0.bus = &obs.Bus{}
	for _, sh := range s.shards {
		sh.out = make([][]xmsg, k)
	}
	for gi, isl := range islands {
		sh := s.shards[assign[gi]]
		for _, n := range isl {
			n.sh = sh
		}
	}

	// Lookahead: the minimum delay of a boundary link whose endpoints
	// landed on different shards. Islands that ended up co-resident do
	// not constrain the window.
	s.horizon = noHorizon
	for _, l := range s.links {
		if l.boundary && l.a.Node.sh != l.b.Node.sh {
			if l.delay <= 0 {
				panic("netsim: shard-boundary link needs positive delay (the delay is the PDES lookahead)")
			}
			if l.delay < s.horizon {
				s.horizon = l.delay
			}
		}
	}

	// Batched deliveries staged before the first run re-expand into
	// individual receive events (everything pre-seal lives on shard 0,
	// so their stored seqs are shard-0 seqs and sort correctly), and
	// the now-stale drain events are dropped during migration below.
	for _, l := range s.links {
		for di := range l.dirs {
			d := &l.dirs[di]
			if len(d.pend) == 0 {
				continue
			}
			dst := l.b
			if di == 1 {
				dst = l.a
			}
			for _, p := range d.pend[d.head:] {
				sh0.queue.push(event{at: p.at, seq: p.seq, kind: evReceive, pkt: p.pkt, ifc: dst})
			}
			for i := range d.pend {
				d.pend[i] = pending{}
			}
			d.pend, d.head, d.inFlight = d.pend[:0], 0, false
		}
	}

	// Migrate pre-seal events to their owner shards in (at, seq) order,
	// renumbering per shard: relative order within a shard is preserved,
	// which is all the heap's tie-break means.
	q := sh0.queue
	sh0.queue = timerQueue{wheelOn: q.wheelOn}
	for q.len() > 0 {
		ev := q.pop()
		if ev.kind == evLinkDeliver {
			continue // re-expanded above
		}
		owner := sh0
		switch {
		case ev.node != nil:
			owner = ev.node.sh
		case ev.kind == evReceive:
			owner = ev.ifc.Node.sh
		}
		owner.seq++
		ev.seq = owner.seq
		owner.queue.push(ev)
	}
}

// ShardCount returns the effective shard count (sealing the topology if
// it has not run yet): 1 whenever the engine collapsed to the legacy
// single-threaded path.
func (s *Simulator) ShardCount() int {
	s.seal()
	if s.single {
		return 1
	}
	return len(s.shards)
}

// runSharded is the coordinator loop: ingest mailboxes, pick the next
// window, run every shard in parallel, merge observability, repeat.
func (s *Simulator) runSharded(deadline time.Duration, hasDeadline bool, maxEvents int) int {
	// More workers than cores just adds scheduler churn to every
	// barrier; on one core par.ForEach degrades to a plain loop, so the
	// shards run cooperatively with no goroutines or channel handoffs
	// at all (the single-core regression fix — windows are frequent).
	workers := len(s.shards)
	if mp := runtime.GOMAXPROCS(0); workers > mp {
		workers = mp
	}
	total := 0
	for {
		s.drainMailboxes()
		next, any := s.nextEventTime()
		if !any {
			break
		}
		if hasDeadline && next > deadline {
			break
		}
		if maxEvents > 0 && total >= maxEvents {
			// Budget hit: like the legacy loop, do not advance clocks so
			// the run can resume (budgets are window-granular here).
			return total
		}
		wend := next + s.horizon
		if wend < next {
			wend = noHorizon // overflow clamp
		}
		if hasDeadline && wend > deadline {
			wend = deadline + 1 // events AT the deadline still run
		}
		s.syncShardObs()
		par.ForEach(workers, len(s.shards), func(i int) {
			s.shards[i].runWindow(wend)
		})
		for _, sh := range s.shards {
			total += sh.processed
		}
		s.flushObs()
	}
	// Align clocks exactly as the legacy loop does: to the deadline when
	// one was given, else to the latest event executed anywhere.
	target := time.Duration(0)
	for _, sh := range s.shards {
		if sh.now > target {
			target = sh.now
		}
	}
	if hasDeadline && target < deadline {
		target = deadline
	}
	for _, sh := range s.shards {
		if sh.now < target {
			sh.now = target
		}
	}
	return total
}

// nextEventTime returns the earliest pending event time across shards.
func (s *Simulator) nextEventTime() (time.Duration, bool) {
	var next time.Duration
	any := false
	for _, sh := range s.shards {
		if sh.queue.len() == 0 {
			continue
		}
		if t := sh.queue.minAt(); !any || t < next {
			next, any = t, true
		}
	}
	return next, any
}

// drainMailboxes moves every outboxed cross-shard delivery onto its
// destination heap. Order is canonical — destination shards in id
// order, source shards in id order, FIFO within a source — and each
// delivery takes a fresh destination sequence number, so ingestion is
// a pure function of the window's (deterministic) transmissions.
func (s *Simulator) drainMailboxes() {
	for _, dst := range s.shards {
		for _, src := range s.shards {
			box := src.out[dst.id]
			if len(box) == 0 {
				continue
			}
			for i := range box {
				m := &box[i]
				dst.seq++
				dst.queue.push(event{at: m.at, seq: dst.seq, kind: evReceive, pkt: m.pkt, ifc: m.ifc})
				box[i] = xmsg{} // release the packet reference
			}
			src.out[dst.id] = box[:0]
		}
	}
}

// syncShardObs aligns the shard-local buses with the global bus's
// subscriber state at a barrier (mid-run subscriptions take effect at
// horizon granularity in sharded runs).
func (s *Simulator) syncShardObs() {
	active := s.bus.Active()
	for _, sh := range s.shards {
		switch {
		case active && !sh.bus.Active():
			sh.bus.Subscribe(&shardBuffer{sh: sh})
		case !active && sh.bus.Active():
			sh.bus = &obs.Bus{}
		}
	}
}

// flushObs merges the shards' buffered events into the global bus in
// (at, seq, shard) order. Each shard's buffer is already sorted by
// (at, seq) — events append in execution order — so this is a stable
// k-way merge.
func (s *Simulator) flushObs() {
	if s.mergeIx == nil {
		s.mergeIx = make([]int, len(s.shards))
	}
	for i := range s.mergeIx {
		s.mergeIx[i] = 0
	}
	for {
		best := -1
		for si, sh := range s.shards {
			i := s.mergeIx[si]
			if i >= len(sh.buf) {
				continue
			}
			if best < 0 {
				best = si
				continue
			}
			b := &s.shards[best].buf[s.mergeIx[best]]
			c := &sh.buf[i]
			if c.ev.At < b.ev.At || (c.ev.At == b.ev.At && c.seq < b.seq) {
				best = si
			}
		}
		if best < 0 {
			break
		}
		s.bus.Publish(s.shards[best].buf[s.mergeIx[best]].ev)
		s.mergeIx[best]++
	}
	for _, sh := range s.shards {
		sh.buf = sh.buf[:0]
	}
}
