// Package netsim is a deterministic discrete-event network simulator:
// the execution substrate standing in for the paper's LAN of SUN
// workstations with the PLAN-P Solaris kernel module (§3).
//
// It models hosts and routers (Node), point-to-point duplex links with
// bandwidth, propagation delay, and drop-tail queues (Link), shared
// Ethernet segments as broadcast domains (Segment), an IPv4-flavoured
// address/routing layer with static routes and multicast groups, and
// windowed per-interface load measurement (RateMeter) — everything the
// three ASP experiments exercise.
//
// The simulator is fully virtual-time and, by default, single-threaded:
// experiments that ran for 500 wall-clock seconds in the paper replay
// in milliseconds, identically on every run. Topologies that declare
// shard boundaries (LinkConfig.ShardBoundary) can additionally run
// their islands on parallel event loops without giving up determinism;
// see shard.go and New's WithShards option.
package netsim

import (
	"math/rand"
	"time"

	"planp.dev/planp/internal/obs"
)

// Simulator owns virtual time and the event queue(s). The zero value is
// not usable; call New (or the NewSimulator shim).
//
// State lives on shards: shard 0 always exists and carries the legacy
// clock, sequence counter, and seeded RNG, so a single-shard simulation
// is bit-for-bit the pre-sharding engine. Simulator-level At/After/Now/
// Rand address shard 0 — the control plane. Code running inside node
// events on a sharded simulation must use Node.Env() instead, so timers
// and randomness land on the executing node's shard.
type Simulator struct {
	seed       int64
	wantShards int

	sealed  bool // topology partitioned (first run)
	single  bool // collapsed to the legacy single-threaded engine
	horizon time.Duration
	shards  []*shard
	mergeIx []int // flushObs scratch

	order  []*Node // creation order (island discovery, determinism)
	links  []*Link
	segs   []*Segment
	nodes  map[Addr]*Node
	nameIx map[string]*Node

	// bus and reg are the simulation's observability substrate: media
	// and nodes publish packet-granular events to bus (free when nobody
	// subscribes) and count traffic in reg.
	bus *obs.Bus
	reg *obs.Registry
}

// Now returns the current virtual time of the control plane (shard 0;
// the one clock in single-shard runs). Between runs all shard clocks
// agree.
func (s *Simulator) Now() time.Duration { return s.shards[0].now }

// Rand returns the control plane's deterministic RNG (the one RNG in
// single-shard runs; node code on sharded simulations draws through
// Node.Env().Int63n instead).
func (s *Simulator) Rand() *rand.Rand { return s.shards[0].rng }

// Int63n returns a pseudo-random integer in [0, n) from the control
// plane RNG (the substrate.Env randomness hook).
func (s *Simulator) Int63n(n int64) int64 { return s.shards[0].rng.Int63n(n) }

// Events returns the simulation's event bus. Subscribing is allowed at
// any point; with no subscribers the per-packet publish sites are free.
// On sharded runs, events arrive merged in (at, seq, shard) order at
// each synchronization horizon.
func (s *Simulator) Events() *obs.Bus { return s.bus }

// Metrics returns the simulation's metrics registry — the single source
// node and runtime statistics are read from. Instruments are atomic, so
// sharded runs update them race-free.
func (s *Simulator) Metrics() *obs.Registry { return s.reg }

// At schedules fn at absolute virtual time t (clamped to now) on the
// control plane (shard 0). It does not allocate: the event is stored by
// value in the queue (append growth amortizes to zero).
func (s *Simulator) At(t time.Duration, fn func()) { s.shards[0].at(t, fn, nil) }

// After schedules fn d after the current time on the control plane.
func (s *Simulator) After(d time.Duration, fn func()) {
	sh := s.shards[0]
	sh.at(sh.now+d, fn, nil)
}

// runLoop seals the topology on first use and dispatches to the legacy
// single-threaded loop or the sharded coordinator.
func (s *Simulator) runLoop(deadline time.Duration, hasDeadline bool, maxEvents int) int {
	s.seal()
	if s.single {
		return s.shards[0].runLegacy(deadline, hasDeadline, maxEvents)
	}
	return s.runSharded(deadline, hasDeadline, maxEvents)
}

// RunUntil processes events in timestamp order until the queue is empty
// or the next event is after deadline, then advances the clock to the
// deadline. It returns the number of events processed.
func (s *Simulator) RunUntil(deadline time.Duration) int {
	return s.runLoop(deadline, true, 0)
}

// RunBounded is RunUntil with an event budget: it additionally stops
// after maxEvents events (the clock is NOT advanced to the deadline in
// that case, so callers can resume). maxEvents <= 0 means unbounded.
// On sharded runs the budget is enforced at horizon granularity: the
// run stops at the first synchronization point where it is met.
func (s *Simulator) RunBounded(deadline time.Duration, maxEvents int) int {
	return s.runLoop(deadline, true, maxEvents)
}

// RunMax processes pending events until the queue is empty or maxEvents
// events have run, without any time deadline. maxEvents <= 0 means
// unbounded (equivalent to Run).
func (s *Simulator) RunMax(maxEvents int) int {
	return s.runLoop(0, false, maxEvents)
}

// Run processes all pending events (useful for tests with naturally
// finite traffic).
func (s *Simulator) Run() int {
	return s.runLoop(0, false, 0)
}

// Node returns the node with the given address, or nil.
func (s *Simulator) Node(a Addr) *Node { return s.nodes[a] }

// NodeByName returns the node with the given name, or nil.
func (s *Simulator) NodeByName(name string) *Node { return s.nameIx[name] }

// evKind discriminates what an event executes on dispatch. The packet
// kinds exist so the media's per-packet scheduling carries the payload
// inside the event value instead of a heap-allocated closure.
type evKind uint8

const (
	evFunc        evKind = iota // run fn
	evReceive                   // ifc.Node.Receive(pkt, ifc)
	evReceiveNow                // node.receiveNow(pkt, ifc) — post-CPU half
	evLinkDeliver               // ifc.deliverBatch: next pending link delivery
)

// event is one scheduled occurrence, stored by value in the queue; seq
// breaks timestamp ties FIFO within a shard. node doubles as the CPU
// target for evReceiveNow and the shard-affinity tag for evFunc events
// scheduled through a node's Env (so pre-seal events migrate to their
// owner shard).
type event struct {
	at   time.Duration
	seq  uint64
	kind evKind
	fn   func()
	node *Node
	pkt  *Packet
	ifc  *Iface
}

// less orders events by (at, seq) — a total order, so any heap pops them
// in exactly the sequence the old container/heap implementation did.
func (e *event) less(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventQueue is a 4-ary min-heap of inline event values. Relative to the
// previous container/heap of *event it removes the per-schedule box, the
// interface-value conversions, and a level of pointer chasing; the wider
// fan-out roughly halves the sift depth, which matters because sift
// moves whole event values.
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	q.siftUp(len(q.ev) - 1)
}

func (q *eventQueue) pop() event {
	top := q.ev[0]
	n := len(q.ev) - 1
	q.ev[0] = q.ev[n]
	q.ev[n] = event{} // release fn/pkt references for GC
	q.ev = q.ev[:n]
	if n > 1 {
		q.siftDown(0)
	}
	return top
}

func (q *eventQueue) siftUp(i int) {
	e := q.ev[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !e.less(&q.ev[parent]) {
			break
		}
		q.ev[i] = q.ev[parent]
		i = parent
	}
	q.ev[i] = e
}

func (q *eventQueue) siftDown(i int) {
	n := len(q.ev)
	e := q.ev[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.ev[c].less(&q.ev[min]) {
				min = c
			}
		}
		if !q.ev[min].less(&e) {
			break
		}
		q.ev[i] = q.ev[min]
		i = min
	}
	q.ev[i] = e
}
