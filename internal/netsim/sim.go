// Package netsim is a deterministic discrete-event network simulator:
// the execution substrate standing in for the paper's LAN of SUN
// workstations with the PLAN-P Solaris kernel module (§3).
//
// It models hosts and routers (Node), point-to-point duplex links with
// bandwidth, propagation delay, and drop-tail queues (Link), shared
// Ethernet segments as broadcast domains (Segment), an IPv4-flavoured
// address/routing layer with static routes and multicast groups, and
// windowed per-interface load measurement (RateMeter) — everything the
// three ASP experiments exercise.
//
// The simulator is single-threaded and fully virtual-time: experiments
// that ran for 500 wall-clock seconds in the paper replay in
// milliseconds, identically on every run.
package netsim

import (
	"math/rand"
	"time"

	"planp.dev/planp/internal/obs"
)

// Simulator owns virtual time and the event queue. The zero value is not
// usable; call NewSimulator.
type Simulator struct {
	now    time.Duration
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	nodes  map[Addr]*Node
	nameIx map[string]*Node

	// bus and reg are the simulation's observability substrate: media
	// and nodes publish packet-granular events to bus (free when nobody
	// subscribes) and count traffic in reg.
	bus *obs.Bus
	reg *obs.Registry
}

// NewSimulator returns a simulator with the given RNG seed. All
// randomness in a simulation flows from this seed, making runs
// reproducible.
func NewSimulator(seed int64) *Simulator {
	return &Simulator{
		rng:    rand.New(rand.NewSource(seed)),
		nodes:  map[Addr]*Node{},
		nameIx: map[string]*Node{},
		bus:    &obs.Bus{},
		reg:    obs.NewRegistry(),
	}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulation's deterministic RNG.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Int63n returns a pseudo-random integer in [0, n) from the simulation
// RNG (the substrate.Env randomness hook).
func (s *Simulator) Int63n(n int64) int64 { return s.rng.Int63n(n) }

// Events returns the simulation's event bus. Subscribing is allowed at
// any point; with no subscribers the per-packet publish sites are free.
func (s *Simulator) Events() *obs.Bus { return s.bus }

// Metrics returns the simulation's metrics registry — the single source
// node and runtime statistics are read from.
func (s *Simulator) Metrics() *obs.Registry { return s.reg }

// At schedules fn at absolute virtual time t (clamped to now). It does
// not allocate: the event is stored by value in the queue (append growth
// amortizes to zero).
func (s *Simulator) At(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.queue.push(event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d after the current time.
func (s *Simulator) After(d time.Duration, fn func()) { s.At(s.now+d, fn) }

// atReceive schedules delivery of pkt to dst's node at absolute time t.
// Media use this instead of At so the packet hot path never allocates a
// closure: the packet and interface ride inside the event value.
func (s *Simulator) atReceive(t time.Duration, pkt *Packet, dst *Iface) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.queue.push(event{at: t, seq: s.seq, kind: evReceive, pkt: pkt, ifc: dst})
}

// atReceiveNow schedules the post-CPU half of Node.Receive (the node's
// CPU frees up at t and processes pkt, which arrived on in).
func (s *Simulator) atReceiveNow(t time.Duration, n *Node, pkt *Packet, in *Iface) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.queue.push(event{at: t, seq: s.seq, kind: evReceiveNow, node: n, pkt: pkt, ifc: in})
}

// runLoop is the single event-processing core every Run variant wraps:
// process events in timestamp order until the queue drains, the next
// event is past the deadline (when hasDeadline), or maxEvents have run
// (when maxEvents > 0). It returns the number of events processed.
func (s *Simulator) runLoop(deadline time.Duration, hasDeadline bool, maxEvents int) int {
	n := 0
	for s.queue.len() > 0 {
		if maxEvents > 0 && n >= maxEvents {
			return n
		}
		if hasDeadline && s.queue.ev[0].at > deadline {
			break
		}
		ev := s.queue.pop()
		s.now = ev.at
		switch ev.kind {
		case evFunc:
			ev.fn()
		case evReceive:
			ev.ifc.Node.Receive(ev.pkt, ev.ifc)
		case evReceiveNow:
			ev.node.receiveNow(ev.pkt, ev.ifc)
		}
		n++
	}
	if hasDeadline && s.now < deadline {
		s.now = deadline
	}
	return n
}

// RunUntil processes events in timestamp order until the queue is empty
// or the next event is after deadline, then advances the clock to the
// deadline. It returns the number of events processed.
func (s *Simulator) RunUntil(deadline time.Duration) int {
	return s.runLoop(deadline, true, 0)
}

// RunBounded is RunUntil with an event budget: it additionally stops
// after maxEvents events (the clock is NOT advanced to the deadline in
// that case, so callers can resume). maxEvents <= 0 means unbounded.
func (s *Simulator) RunBounded(deadline time.Duration, maxEvents int) int {
	return s.runLoop(deadline, true, maxEvents)
}

// RunMax processes pending events until the queue is empty or maxEvents
// events have run, without any time deadline. maxEvents <= 0 means
// unbounded (equivalent to Run).
func (s *Simulator) RunMax(maxEvents int) int {
	return s.runLoop(0, false, maxEvents)
}

// Run processes all pending events (useful for tests with naturally
// finite traffic).
func (s *Simulator) Run() int {
	return s.runLoop(0, false, 0)
}

// Node returns the node with the given address, or nil.
func (s *Simulator) Node(a Addr) *Node { return s.nodes[a] }

// NodeByName returns the node with the given name, or nil.
func (s *Simulator) NodeByName(name string) *Node { return s.nameIx[name] }

// evKind discriminates what an event executes on dispatch. The packet
// kinds exist so the media's per-packet scheduling carries the payload
// inside the event value instead of a heap-allocated closure.
type evKind uint8

const (
	evFunc       evKind = iota // run fn
	evReceive                  // ifc.Node.Receive(pkt, ifc)
	evReceiveNow               // node.receiveNow(pkt, ifc) — post-CPU half
)

// event is one scheduled occurrence, stored by value in the queue; seq
// breaks timestamp ties FIFO.
type event struct {
	at   time.Duration
	seq  uint64
	kind evKind
	fn   func()
	node *Node
	pkt  *Packet
	ifc  *Iface
}

// less orders events by (at, seq) — a total order, so any heap pops them
// in exactly the sequence the old container/heap implementation did.
func (e *event) less(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventQueue is a 4-ary min-heap of inline event values. Relative to the
// previous container/heap of *event it removes the per-schedule box, the
// interface-value conversions, and a level of pointer chasing; the wider
// fan-out roughly halves the sift depth, which matters because sift
// moves whole event values.
type eventQueue struct {
	ev []event
}

func (q *eventQueue) len() int { return len(q.ev) }

func (q *eventQueue) push(e event) {
	q.ev = append(q.ev, e)
	q.siftUp(len(q.ev) - 1)
}

func (q *eventQueue) pop() event {
	top := q.ev[0]
	n := len(q.ev) - 1
	q.ev[0] = q.ev[n]
	q.ev[n] = event{} // release fn/pkt references for GC
	q.ev = q.ev[:n]
	if n > 1 {
		q.siftDown(0)
	}
	return top
}

func (q *eventQueue) siftUp(i int) {
	e := q.ev[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !e.less(&q.ev[parent]) {
			break
		}
		q.ev[i] = q.ev[parent]
		i = parent
	}
	q.ev[i] = e
}

func (q *eventQueue) siftDown(i int) {
	n := len(q.ev)
	e := q.ev[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.ev[c].less(&q.ev[min]) {
				min = c
			}
		}
		if !q.ev[min].less(&e) {
			break
		}
		q.ev[i] = q.ev[min]
		i = min
	}
	q.ev[i] = e
}
