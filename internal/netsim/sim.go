// Package netsim is a deterministic discrete-event network simulator:
// the execution substrate standing in for the paper's LAN of SUN
// workstations with the PLAN-P Solaris kernel module (§3).
//
// It models hosts and routers (Node), point-to-point duplex links with
// bandwidth, propagation delay, and drop-tail queues (Link), shared
// Ethernet segments as broadcast domains (Segment), an IPv4-flavoured
// address/routing layer with static routes and multicast groups, and
// windowed per-interface load measurement (RateMeter) — everything the
// three ASP experiments exercise.
//
// The simulator is single-threaded and fully virtual-time: experiments
// that ran for 500 wall-clock seconds in the paper replay in
// milliseconds, identically on every run.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"planp.dev/planp/internal/obs"
)

// Simulator owns virtual time and the event queue. The zero value is not
// usable; call NewSimulator.
type Simulator struct {
	now    time.Duration
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	nodes  map[Addr]*Node
	nameIx map[string]*Node

	// bus and reg are the simulation's observability substrate: media
	// and nodes publish packet-granular events to bus (free when nobody
	// subscribes) and count traffic in reg.
	bus *obs.Bus
	reg *obs.Registry
}

// NewSimulator returns a simulator with the given RNG seed. All
// randomness in a simulation flows from this seed, making runs
// reproducible.
func NewSimulator(seed int64) *Simulator {
	return &Simulator{
		rng:    rand.New(rand.NewSource(seed)),
		nodes:  map[Addr]*Node{},
		nameIx: map[string]*Node{},
		bus:    &obs.Bus{},
		reg:    obs.NewRegistry(),
	}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulation's deterministic RNG.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Events returns the simulation's event bus. Subscribing is allowed at
// any point; with no subscribers the per-packet publish sites are free.
func (s *Simulator) Events() *obs.Bus { return s.bus }

// Metrics returns the simulation's metrics registry — the single source
// node and runtime statistics are read from.
func (s *Simulator) Metrics() *obs.Registry { return s.reg }

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Simulator) At(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.queue, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn d after the current time.
func (s *Simulator) After(d time.Duration, fn func()) { s.At(s.now+d, fn) }

// runLoop is the single event-processing core every Run variant wraps:
// process events in timestamp order until the queue drains, the next
// event is past the deadline (when hasDeadline), or maxEvents have run
// (when maxEvents > 0). It returns the number of events processed.
func (s *Simulator) runLoop(deadline time.Duration, hasDeadline bool, maxEvents int) int {
	n := 0
	for len(s.queue) > 0 {
		if maxEvents > 0 && n >= maxEvents {
			return n
		}
		ev := s.queue[0]
		if hasDeadline && ev.at > deadline {
			break
		}
		heap.Pop(&s.queue)
		s.now = ev.at
		ev.fn()
		n++
	}
	if hasDeadline && s.now < deadline {
		s.now = deadline
	}
	return n
}

// RunUntil processes events in timestamp order until the queue is empty
// or the next event is after deadline, then advances the clock to the
// deadline. It returns the number of events processed.
func (s *Simulator) RunUntil(deadline time.Duration) int {
	return s.runLoop(deadline, true, 0)
}

// RunBounded is RunUntil with an event budget: it additionally stops
// after maxEvents events (the clock is NOT advanced to the deadline in
// that case, so callers can resume). maxEvents <= 0 means unbounded.
func (s *Simulator) RunBounded(deadline time.Duration, maxEvents int) int {
	return s.runLoop(deadline, true, maxEvents)
}

// RunMax processes pending events until the queue is empty or maxEvents
// events have run, without any time deadline. maxEvents <= 0 means
// unbounded (equivalent to Run).
func (s *Simulator) RunMax(maxEvents int) int {
	return s.runLoop(0, false, maxEvents)
}

// Run processes all pending events (useful for tests with naturally
// finite traffic).
func (s *Simulator) Run() int {
	return s.runLoop(0, false, 0)
}

// Node returns the node with the given address, or nil.
func (s *Simulator) Node(a Addr) *Node { return s.nodes[a] }

// NodeByName returns the node with the given name, or nil.
func (s *Simulator) NodeByName(name string) *Node { return s.nameIx[name] }

// event is one scheduled callback; seq breaks timestamp ties FIFO.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Addr is a packed big-endian IPv4-style address.
type Addr uint32

// ParseAddr converts a dotted quad to an Addr.
func ParseAddr(s string) (Addr, error) {
	var a, b, c, d int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, fmt.Errorf("netsim: malformed address %q", s)
	}
	for _, o := range []int{a, b, c, d} {
		if o < 0 || o > 255 {
			return 0, fmt.Errorf("netsim: malformed address %q", s)
		}
	}
	return Addr(a)<<24 | Addr(b)<<16 | Addr(c)<<8 | Addr(d), nil
}

// MustAddr is ParseAddr that panics on malformed input (for literals in
// scenario setup code).
func MustAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the address as a dotted quad.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// IsMulticast reports whether a is in the 224.0.0.0/4 group range.
func (a Addr) IsMulticast() bool { return a>>28 == 0xE }
