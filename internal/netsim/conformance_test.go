package netsim_test

import (
	"testing"

	"planp.dev/planp/internal/netsim"
	"planp.dev/planp/internal/substrate"
	"planp.dev/planp/internal/substrate/subtest"
)

// simHarness adapts the deterministic simulator to the substrate
// conformance suite.
type simHarness struct {
	sim *netsim.Simulator
}

func (h *simHarness) Build(t *testing.T, hosts []subtest.HostSpec) []substrate.Node {
	h.sim = netsim.NewSimulator(42)
	ns := make([]*netsim.Node, len(hosts))
	for i, hs := range hosts {
		ns[i] = netsim.NewNode(h.sim, hs.Name, hs.Addr)
		ns[i].Forwarding = hs.Forwarding
	}
	// Line topology: link consecutive pairs, route left/right along the
	// line, default routes off the ends (so unknown destinations leave
	// the line the way real stub networks default-route upstream).
	left := make([]*netsim.Iface, len(ns))  // iface toward lower indices
	right := make([]*netsim.Iface, len(ns)) // iface toward higher indices
	for i := 0; i+1 < len(ns); i++ {
		l := netsim.Connect(h.sim, ns[i], ns[i+1], netsim.LinkConfig{Bandwidth: 1_000_000_000})
		ifs := l.Ifaces()
		right[i], left[i+1] = ifs[0], ifs[1]
	}
	out := make([]substrate.Node, len(ns))
	for i, n := range ns {
		for j := range ns {
			switch {
			case j < i:
				n.AddRoute(ns[j].Addr, left[i])
			case j > i:
				n.AddRoute(ns[j].Addr, right[i])
			}
		}
		if i == 0 {
			n.SetDefaultRoute(right[i])
		} else if i == len(ns)-1 {
			n.SetDefaultRoute(left[i])
		}
		out[i] = n
	}
	return out
}

func (h *simHarness) Start() {}

func (h *simHarness) Settle(t *testing.T) { h.sim.Run() }

func (h *simHarness) Env() substrate.Env { return h.sim }

// TestSubstrateConformance runs the shared backend conformance suite
// against the simulator.
func TestSubstrateConformance(t *testing.T) {
	subtest.Run(t, func() subtest.Harness { return &simHarness{} })
}
