package netsim

import (
	"testing"
	"time"
)

// TestPerPacketCPUSerializes pins the gateway contention model: a node
// with per-packet CPU cost caps its processing rate at 1/cost.
func TestPerPacketCPUSerializes(t *testing.T) {
	sim := NewSimulator(1)
	a := NewNode(sim, "a", MustAddr("10.0.0.1"))
	r := NewNode(sim, "r", MustAddr("10.0.0.254"))
	b := NewNode(sim, "b", MustAddr("10.0.1.1"))
	r.Forwarding = true
	r.PerPacketCPU = time.Millisecond // 1000 pps ceiling
	l1 := Connect(sim, a, r, LinkConfig{Bandwidth: 1_000_000_000, QueueLimit: 10 << 20})
	l2 := Connect(sim, r, b, LinkConfig{Bandwidth: 1_000_000_000, QueueLimit: 10 << 20})
	a.SetDefaultRoute(l1.Ifaces()[0])
	r.AddRoute(b.Addr, l2.Ifaces()[0])
	b.SetDefaultRoute(l2.Ifaces()[1])

	var arrivals []time.Duration
	b.BindUDP(9, func(*Packet) { arrivals = append(arrivals, sim.Now()) })
	// 50 packets arrive at the router nearly simultaneously.
	for i := 0; i < 50; i++ {
		a.Send(NewUDP(a.Addr, b.Addr, 1, 9, make([]byte, 100)))
	}
	sim.Run()
	if len(arrivals) != 50 {
		t.Fatalf("delivered %d", len(arrivals))
	}
	// Deliveries pace out at ~1ms intervals behind the router CPU.
	span := arrivals[len(arrivals)-1] - arrivals[0]
	if span < 45*time.Millisecond {
		t.Errorf("50 packets crossed a 1ms/packet CPU in %v; want >= ~49ms", span)
	}
	// Zero-CPU nodes process synchronously (no pacing).
	r.PerPacketCPU = 0
	arrivals = arrivals[:0]
	for i := 0; i < 10; i++ {
		a.Send(NewUDP(a.Addr, b.Addr, 1, 9, make([]byte, 100)))
	}
	sim.Run()
	span = arrivals[len(arrivals)-1] - arrivals[0]
	if span > 10*time.Millisecond {
		t.Errorf("zero-CPU span %v", span)
	}
}

func TestNodeLookups(t *testing.T) {
	sim := NewSimulator(1)
	n := NewNode(sim, "host", MustAddr("10.0.0.1"))
	if sim.Node(n.Addr) != n || sim.NodeByName("host") != n {
		t.Error("lookups failed")
	}
	if sim.Node(MustAddr("9.9.9.9")) != nil || sim.NodeByName("ghost") != nil {
		t.Error("missing lookups should be nil")
	}
	// Duplicate registration panics (programming error).
	for _, dup := range []func(){
		func() { NewNode(sim, "other", n.Addr) },
		func() { NewNode(sim, "host", MustAddr("10.0.0.2")) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("duplicate node registration should panic")
				}
			}()
			dup()
		}()
	}
}

func TestSendToSelfDeliversLocally(t *testing.T) {
	sim := NewSimulator(1)
	n := NewNode(sim, "n", MustAddr("10.0.0.1"))
	got := 0
	n.BindUDP(9, func(*Packet) { got++ })
	n.Send(NewUDP(n.Addr, n.Addr, 1, 9, nil))
	sim.Run()
	if got != 1 {
		t.Errorf("self-send deliveries = %d", got)
	}
}

func TestUnroutableCountsDrop(t *testing.T) {
	sim := NewSimulator(1)
	n := NewNode(sim, "n", MustAddr("10.0.0.1"))
	n.Send(NewUDP(n.Addr, MustAddr("10.9.9.9"), 1, 9, nil))
	sim.Run()
	if n.Stats().DroppedPkts != 1 {
		t.Errorf("drops = %d", n.Stats().DroppedPkts)
	}
}

func TestBindRawReceivesUnboundPorts(t *testing.T) {
	sim := NewSimulator(1)
	a := NewNode(sim, "a", MustAddr("10.0.0.1"))
	b := NewNode(sim, "b", MustAddr("10.0.0.2"))
	l := Connect(sim, a, b, LinkConfig{Bandwidth: 10_000_000})
	a.SetDefaultRoute(l.Ifaces()[0])
	bound, raw := 0, 0
	b.BindUDP(9, func(*Packet) { bound++ })
	b.BindRaw(func(*Packet) { raw++ })
	a.Send(NewUDP(a.Addr, b.Addr, 1, 9, nil))  // bound port
	a.Send(NewUDP(a.Addr, b.Addr, 1, 99, nil)) // unbound port
	sim.Run()
	if bound != 1 || raw != 1 {
		t.Errorf("bound=%d raw=%d, want 1/1 (raw only catches unbound)", bound, raw)
	}
}
