// Package loadgen generates background traffic: the "load generator" of
// figure 5 that contends with audio traffic on the client segment, and
// the stepped-load schedule that drives figure 6.
package loadgen

import (
	"time"

	"planp.dev/planp/internal/netsim"
)

// Step is one phase of a load schedule.
type Step struct {
	At   time.Duration // phase start
	Bps  int64         // offered load in bits/s (0 = silence)
	Size int           // packet payload size (default 1000 bytes)
}

// Generator emits UDP background traffic from a node toward a
// destination according to a stepped schedule.
type Generator struct {
	Node    *netsim.Node
	Dst     netsim.Addr
	DstPort uint16
	Steps   []Step

	sent      int64
	sentBytes int64
	stopped   bool
}

// Start schedules the generator's traffic until end. Packets within each
// phase are evenly spaced at the phase's offered rate.
func (g *Generator) Start(sim *netsim.Simulator, end time.Duration) {
	for i, step := range g.Steps {
		phaseEnd := end
		if i+1 < len(g.Steps) {
			phaseEnd = g.Steps[i+1].At
		}
		if step.Bps <= 0 {
			continue
		}
		size := step.Size
		if size <= 0 {
			size = 1000
		}
		wire := size + netsim.IPHeaderLen + netsim.UDPHeaderLen
		interval := time.Duration(int64(wire) * 8 * int64(time.Second) / step.Bps)
		if interval <= 0 {
			interval = time.Microsecond
		}
		for at := step.At; at < phaseEnd; at += interval {
			payload := make([]byte, size)
			t := at
			sim.At(t, func() {
				if g.stopped {
					return
				}
				pkt := netsim.NewUDP(g.Node.Addr, g.Dst, 40000, g.DstPort, payload)
				g.sent++
				g.sentBytes += int64(pkt.Size())
				g.Node.Send(pkt.Own())
			})
		}
	}
}

// Stop silences the generator (pending events become no-ops).
func (g *Generator) Stop() { g.stopped = true }

// Sent returns packets and bytes emitted so far.
func (g *Generator) Sent() (pkts, bytes int64) { return g.sent, g.sentBytes }

// Poisson emits packets with exponentially distributed inter-arrival
// times at the given mean rate — the arrival model for the HTTP client
// load sweep (figure 8's offered-load axis).
type Poisson struct {
	Node *netsim.Node
	Rate float64 // packets per second
	Emit func()  // called per arrival

	stopped bool
}

// Start begins the arrival process at virtual time start, running until
// end.
func (p *Poisson) Start(sim *netsim.Simulator, start, end time.Duration) {
	if p.Rate <= 0 {
		return
	}
	var schedule func(at time.Duration)
	schedule = func(at time.Duration) {
		if at >= end {
			return
		}
		sim.At(at, func() {
			if p.stopped {
				return
			}
			p.Emit()
			gap := time.Duration(sim.Rand().ExpFloat64() / p.Rate * float64(time.Second))
			if gap <= 0 {
				gap = time.Microsecond
			}
			schedule(sim.Now() + gap)
		})
	}
	first := start + time.Duration(sim.Rand().ExpFloat64()/p.Rate*float64(time.Second))
	schedule(first)
}

// Stop halts the arrival process.
func (p *Poisson) Stop() { p.stopped = true }
