package loadgen

import (
	"testing"
	"time"

	"planp.dev/planp/internal/netsim"
)

func pair(t *testing.T) (*netsim.Simulator, *netsim.Node, *netsim.Node) {
	t.Helper()
	sim := netsim.NewSimulator(2)
	a := netsim.NewNode(sim, "gen", netsim.MustAddr("10.0.0.1"))
	b := netsim.NewNode(sim, "sink", netsim.MustAddr("10.0.0.2"))
	l := netsim.Connect(sim, a, b, netsim.LinkConfig{Bandwidth: 100_000_000})
	a.SetDefaultRoute(l.Ifaces()[0])
	b.SetDefaultRoute(l.Ifaces()[1])
	return sim, a, b
}

func TestGeneratorOfferedRate(t *testing.T) {
	sim, a, b := pair(t)
	var bytes int64
	b.BindUDP(40000, func(p *netsim.Packet) { bytes += int64(p.Size()) })
	g := &Generator{Node: a, Dst: b.Addr, DstPort: 40000,
		Steps: []Step{{At: 0, Bps: 8_000_000}}}
	g.Start(sim, time.Second)
	sim.Run()
	rate := float64(bytes) * 8
	if rate < 7_500_000 || rate > 8_500_000 {
		t.Errorf("delivered %.0f b/s, want ~8M", rate)
	}
	pkts, sent := g.Sent()
	if pkts == 0 || sent == 0 {
		t.Error("generator reports nothing sent")
	}
}

func TestGeneratorSteps(t *testing.T) {
	sim, a, b := pair(t)
	perPhase := map[int]int{}
	b.BindUDP(40000, func(p *netsim.Packet) {
		perPhase[int(sim.Now()/time.Second)]++
	})
	g := &Generator{Node: a, Dst: b.Addr, DstPort: 40000,
		Steps: []Step{
			{At: 0, Bps: 1_000_000},
			{At: time.Second, Bps: 0}, // silence
			{At: 2 * time.Second, Bps: 4_000_000},
		}}
	g.Start(sim, 3*time.Second)
	sim.Run()
	if perPhase[1] != 0 {
		t.Errorf("silent phase delivered %d packets", perPhase[1])
	}
	if perPhase[2] < 3*perPhase[0] {
		t.Errorf("phase rates: %v (phase 2 should be ~4x phase 0)", perPhase)
	}
}

func TestGeneratorStop(t *testing.T) {
	sim, a, b := pair(t)
	n := 0
	b.BindUDP(40000, func(*netsim.Packet) { n++ })
	g := &Generator{Node: a, Dst: b.Addr, DstPort: 40000,
		Steps: []Step{{At: 0, Bps: 1_000_000}}}
	g.Start(sim, time.Second)
	sim.At(500*time.Millisecond, g.Stop)
	sim.Run()
	pkts, _ := g.Sent()
	if int64(n) != pkts {
		t.Errorf("delivered %d != sent %d", n, pkts)
	}
	// Should have roughly half the packets of a full run.
	if n == 0 || n > 80 {
		t.Errorf("stop did not halt the generator: %d packets", n)
	}
}

func TestPoissonRate(t *testing.T) {
	sim, _, _ := pair(t)
	arrivals := 0
	p := &Poisson{Node: nil, Rate: 500, Emit: func() { arrivals++ }}
	p.Start(sim, 0, 4*time.Second)
	sim.Run()
	// 500/s over 4s = 2000 expected; Poisson stddev ~45.
	if arrivals < 1800 || arrivals > 2200 {
		t.Errorf("arrivals = %d, want ~2000", arrivals)
	}
}

func TestPoissonStopAndZeroRate(t *testing.T) {
	sim, _, _ := pair(t)
	arrivals := 0
	p := &Poisson{Rate: 1000, Emit: func() { arrivals++ }}
	p.Start(sim, 0, time.Second)
	sim.At(100*time.Millisecond, p.Stop)
	sim.Run()
	if arrivals > 200 {
		t.Errorf("stop ineffective: %d arrivals", arrivals)
	}
	// Zero rate starts nothing.
	q := &Poisson{Rate: 0, Emit: func() { t.Error("emitted at zero rate") }}
	q.Start(sim, 0, time.Second)
	sim.Run()
}

func TestPoissonDeterminism(t *testing.T) {
	counts := [2]int{}
	for i := range counts {
		sim := netsim.NewSimulator(77)
		p := &Poisson{Rate: 300, Emit: func() { counts[i]++ }}
		p.Start(sim, 0, 2*time.Second)
		sim.Run()
	}
	if counts[0] != counts[1] {
		t.Errorf("same seed, different arrival counts: %v", counts)
	}
}
