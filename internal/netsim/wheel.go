// Hierarchical timing wheel: the shard event queue for dense
// short-horizon timers (link deliveries, retransmits, Env.After).
//
// # Why a wheel
//
// The 4-ary heap pays O(log n) value moves per operation, and at
// city scale a shard's heap holds tens of thousands of pending
// deliveries: sift traffic dominates the scheduler (BenchmarkEventQueue
// vs BenchmarkTimerWheel in bench_test.go). A hashed wheel makes the
// common schedule an O(1) append into a time-bucketed slot and only
// pays heap cost for the handful of events that are actually next.
//
// # Structure
//
// timerQueue is a hybrid: a 3-level power-of-two wheel in front of the
// existing eventQueue heap. Level 0 buckets time into ~8.2 µs ticks
// (256 slots ≈ 2.1 ms of horizon), level 1 into ~2.1 ms (≈ 537 ms),
// level 2 into ~537 ms (≈ 137 s). Events beyond the outermost horizon,
// or behind a level's drained frontier, overflow into the heap — the
// heap is both the far-future store and the near-term staging area.
//
// # Exact (at, seq) order
//
// The determinism contract requires pops in exactly the (at, seq)
// order the pure heap produces. The wheel never orders events itself:
// before any pop or peek, ensure() drains the earliest occupied slot
// into the heap until the heap's top is strictly earlier than the
// earliest possible wheel event (wheelMin, the earliest occupied
// slot's start time — a lower bound). Draining moves whole slots, so
// same-slot events are tie-broken by the heap's (at, seq) comparison,
// and a strict `<` test means a heap/wheel tie always drains the slot
// first; order is therefore bit-identical to the heap-only engine
// (property-tested in wheel_test.go, plus the wheel on/off CI diff).
//
// # Small queues
//
// Below wheelMinLoad pending events the wheel is bypassed entirely —
// push goes straight to the heap (a 64-event 4-ary heap is 3 levels
// deep; slot bookkeeping costs more than it saves). The crossover is a
// pure performance choice: routing decisions never affect pop order.
package netsim

import (
	"math"
	"math/bits"
	"time"
)

const (
	// wheelTickShift buckets level 0 into 2^13 ns ≈ 8.2 µs ticks: fine
	// enough that a 1 Gb/s link's per-packet serialization (≈ 8–12 µs)
	// lands in distinct-or-adjacent slots, coarse enough that 256 slots
	// cover every sub-millisecond retransmit/delivery horizon.
	wheelTickShift = 13
	wheelSlotBits  = 8 // 256 slots per level
	wheelSlots     = 1 << wheelSlotBits
	wheelMask      = wheelSlots - 1
	wheelLevels    = 3
	wheelWords     = wheelSlots / 64 // occupancy bitmap words per level

	// wheelMinLoad is the pending-event count below which push bypasses
	// the wheel and uses the heap directly.
	wheelMinLoad = 64
)

// timerQueue is the per-shard event queue: a hierarchical timing wheel
// hybridized with the 4-ary eventQueue heap. The zero value is a valid
// empty queue with the wheel disabled; shards enable it via the
// simulator's wheel flag (WithWheel / PLANP_NETSIM_WHEEL).
type timerQueue struct {
	heap    eventQueue
	wheelOn bool

	wcount int                          // events currently parked in wheel slots
	cur    [wheelLevels]int64           // per-level frontier (absolute slot number)
	occ    [wheelLevels][wheelWords]uint64
	slots  [wheelLevels][wheelSlots][]event

	// wheelMin is the start time (ns) of the earliest occupied slot — a
	// lower bound on every wheel event's at. Maintained on insert,
	// recomputed after each drain; meaningless when wcount == 0.
	wheelMin int64
}

func (q *timerQueue) len() int { return q.heap.len() + q.wcount }

// push schedules e. Routing (wheel slot vs heap) is invisible to pop
// order; see the package comment's exactness argument.
func (q *timerQueue) push(e event) {
	if !q.wheelOn || q.heap.len()+q.wcount < wheelMinLoad {
		q.heap.push(e)
		return
	}
	q.route(e)
}

// route places e in the finest wheel slot that covers it, falling back
// to the heap for events behind a frontier or beyond the outermost
// horizon.
func (q *timerQueue) route(e event) {
	sl := int64(e.at) >> wheelTickShift
	for l := 0; l < wheelLevels; l++ {
		if sl < q.cur[l] {
			// Behind this level's drained frontier: the heap is the
			// always-correct home (ensure compares against it directly).
			break
		}
		if sl < q.cur[l]+wheelSlots {
			idx := int(sl & wheelMask)
			q.slots[l][idx] = append(q.slots[l][idx], e)
			q.occ[l][idx>>6] |= 1 << uint(idx&63)
			q.wcount++
			start := sl << uint(wheelTickShift+l*wheelSlotBits)
			if q.wcount == 1 || start < q.wheelMin {
				q.wheelMin = start
			}
			return
		}
		sl >>= wheelSlotBits
	}
	q.heap.push(e)
}

// ensure establishes the invariant pop and minAt rely on: the heap top
// is the global minimum. It drains earliest slots until the heap's top
// is strictly before every event still parked in the wheel.
func (q *timerQueue) ensure() {
	for q.wcount > 0 {
		if q.heap.len() > 0 && int64(q.heap.ev[0].at) < q.wheelMin {
			return
		}
		q.advance()
	}
}

// pop removes and returns the earliest event in exact (at, seq) order.
func (q *timerQueue) pop() event {
	if q.wcount > 0 {
		q.ensure()
	}
	return q.heap.pop()
}

// minAt returns the earliest pending event time. The queue must be
// non-empty.
func (q *timerQueue) minAt() time.Duration {
	if q.wcount > 0 {
		q.ensure()
	}
	return q.heap.ev[0].at
}

// min returns the earliest pending event (valid until the next queue
// operation). The queue must be non-empty.
func (q *timerQueue) min() *event {
	if q.wcount > 0 {
		q.ensure()
	}
	return &q.heap.ev[0]
}

// advance drains the globally earliest occupied slot: level 0 slots
// empty into the heap (which resolves intra-slot (at, seq) order),
// coarser slots cascade their events down through route. Frontiers
// move forward so every drained slot index is free for reuse one full
// rotation later.
func (q *timerQueue) advance() {
	bestL := -1
	var bestSlot, bestStart int64
	for l := 0; l < wheelLevels; l++ {
		sl, ok := q.firstOcc(l)
		if !ok {
			continue
		}
		start := sl << uint(wheelTickShift+l*wheelSlotBits)
		if bestL < 0 || start < bestStart {
			bestL, bestSlot, bestStart = l, sl, start
		}
	}

	idx := int(bestSlot & wheelMask)
	evs := q.slots[bestL][idx]
	q.slots[bestL][idx] = evs[:0]
	q.occ[bestL][idx>>6] &^= 1 << uint(idx&63)
	q.wcount -= len(evs)

	// This slot was the global earliest, so every finer level is empty
	// before its start: fast-forward their frontiers to it, then step
	// this level past the drained slot.
	q.cur[bestL] = bestSlot + 1
	for f := 0; f < bestL; f++ {
		q.cur[f] = bestSlot << uint((bestL-f)*wheelSlotBits)
	}

	for i := range evs {
		e := evs[i]
		evs[i] = event{} // release fn/pkt references for GC
		if bestL == 0 {
			q.heap.push(e)
		} else {
			q.route(e)
		}
	}

	// Recompute the lower bound for the remaining wheel population.
	q.wheelMin = math.MaxInt64
	for l := 0; l < wheelLevels; l++ {
		if sl, ok := q.firstOcc(l); ok {
			if start := sl << uint(wheelTickShift+l*wheelSlotBits); start < q.wheelMin {
				q.wheelMin = start
			}
		}
	}
}

// firstOcc returns the absolute slot number of the first occupied slot
// at level l, scanning the occupancy bitmap circularly from the
// frontier. All occupied slots live within one rotation of cur[l], so
// bit position p maps to exactly one absolute slot.
func (q *timerQueue) firstOcc(l int) (int64, bool) {
	base := q.cur[l]
	idx := int(base & wheelMask)
	occ := &q.occ[l]
	// Same rotation: bit positions >= idx.
	w := idx >> 6
	word := occ[w] &^ (1<<uint(idx&63) - 1)
	for {
		if word != 0 {
			p := w<<6 + bits.TrailingZeros64(word)
			return base + int64(p-idx), true
		}
		w++
		if w >= wheelWords {
			break
		}
		word = occ[w]
	}
	// Wrapped: bit positions < idx belong to the next rotation window.
	for w = 0; w <= idx>>6; w++ {
		word = occ[w]
		if w == idx>>6 {
			word &= 1<<uint(idx&63) - 1
		}
		if word != 0 {
			p := w<<6 + bits.TrailingZeros64(word)
			return base + int64(wheelSlots-idx+p), true
		}
	}
	return 0, false
}
