package planpd

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"planp.dev/planp/asp"
	"planp.dev/planp/internal/chaos"
	"planp.dev/planp/internal/fleet"
)

// TestGatewayCrashRedeployE2E is the recovery story on the real-time
// backend: the fleet controller rolls the load-balancing ASP onto the
// live gateway, the gateway node crashes and restarts bare (the chaos
// engine's crash semantics: installed protocol gone, its daemon back
// with empty state), the virtual server goes dark — and a second fleet
// rollout brings service back. This is the wall-clock counterpart of
// the crash scenarios in the netsim robustness suite.
func TestGatewayCrashRedeployE2E(t *testing.T) {
	cluster, err := NewCluster(false)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.Start()

	eng := chaos.New(cluster.Net, 7)
	eng.Adopt(cluster.Gateway)

	// The gateway's planpd daemon. On node restart the handler is
	// replaced with a fresh server — a restarted daemon remembers
	// nothing about staged or active versions.
	var mu sync.Mutex
	handler := NewServer(cluster.Gateway, io.Discard).Handler()
	ctl := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		h := handler
		mu.Unlock()
		h.ServeHTTP(w, r)
	}))
	defer ctl.Close()

	fc := fleet.New(fleet.Config{})
	targets := []fleet.Target{{Name: "gateway", URL: ctl.URL}}
	ctx := context.Background()

	drive := func(base uint16, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			cluster.SendRequest(base + uint16(i))
		}
		if !cluster.Net.Quiesce(10 * time.Second) {
			t.Fatal("cluster did not quiesce")
		}
	}

	// Rollout v1; the cluster balances and masquerades.
	if _, err := fc.Deploy(ctx, fleet.Spec{Version: "v1", Source: asp.HTTPGateway, Verify: "single"}, targets); err != nil {
		t.Fatalf("initial rollout: %v", err)
	}
	drive(20000, 40)
	_, virtualV1 := cluster.Responses()
	if virtualV1 < 30 {
		t.Fatalf("v1 serving: %d virtual-server responses of 40 requests", virtualV1)
	}
	s0, s1 := cluster.Served()
	if s0 == 0 || s1 == 0 {
		t.Fatalf("v1 not balancing: server0=%d server1=%d", s0, s1)
	}

	// Crash the live gateway; it restarts bare and its daemon restarts
	// with it. The protocol is gone, so virtual-server traffic dies at
	// server0 unanswered.
	eng.Apply(chaos.Crash("gateway"))
	eng.Apply(chaos.Restart("gateway"))
	mu.Lock()
	handler = NewServer(cluster.Gateway, io.Discard).Handler()
	mu.Unlock()

	drive(40000, 20)
	_, virtualDark := cluster.Responses()
	if virtualDark != virtualV1 {
		t.Fatalf("virtual server answered %d requests while the gateway was bare", virtualDark-virtualV1)
	}

	// Recovery: a fresh fleet rollout onto the restarted node.
	if _, err := fc.Deploy(ctx, fleet.Spec{Version: "v2", Source: asp.HTTPGateway, Verify: "single"}, targets); err != nil {
		t.Fatalf("recovery rollout: %v", err)
	}
	drive(50000, 40)
	_, virtualV2 := cluster.Responses()
	if virtualV2-virtualDark < 30 {
		t.Fatalf("recovery serving: only %d virtual-server responses after redeploy", virtualV2-virtualDark)
	}
}
