// The remote chaos control plane: an HTTP surface over one daemon's
// chaos.Engine, so fault timelines can be staged and driven from
// ANOTHER host — the distributed-testbed shape, where the operator's
// machine injects a partition into a cluster of planpd daemons and
// watches the adaptation loop route around it.
//
// A timeline arrives as JSON (chaos.Timeline), is validated against
// the daemon's actual topology at staging time (unknown links, bad
// directions, and unsupported primitives are structured 422s, never
// mid-run panics), and plays as a cancelable run. Stopping a run
// suppresses its pending steps; `clear` additionally heals every fault
// already injected.
package planpd

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"planp.dev/planp/internal/chaos"
)

// maxTimeline bounds an uploaded timeline; far above any real schedule.
const maxTimeline = 1 << 20

// ChaosServer is the /chaos control API over one chaos engine.
type ChaosServer struct {
	eng *chaos.Engine

	mu     sync.Mutex
	staged map[string]*chaos.Timeline
	runs   map[string]*chaos.Run
}

// NewChaosServer returns a control server driving eng. The engine's
// links and nodes must be wired before requests arrive (timelines are
// validated against them).
func NewChaosServer(eng *chaos.Engine) *ChaosServer {
	return &ChaosServer{
		eng:    eng,
		staged: map[string]*chaos.Timeline{},
		runs:   map[string]*chaos.Run{},
	}
}

// Handler returns the chaos control API:
//
//	POST /chaos/stage   validate the timeline JSON in the body against
//	                    this daemon's topology and hold it for start
//	POST /chaos/start   play a timeline: ?name= starts a staged one, a
//	                    request body stages and starts in one shot
//	POST /chaos/stop    stop a run (?name=, or every run when omitted),
//	                    suppressing pending steps; ?clear=1 also heals
//	                    every injected fault (links + clock skew)
//	GET  /chaos/status  wired links, adopted nodes, staged timelines,
//	                    and each run's fired/total/stopped state
func (cs *ChaosServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/chaos/stage", cs.handleStage)
	mux.HandleFunc("/chaos/start", cs.handleStart)
	mux.HandleFunc("/chaos/stop", cs.handleStop)
	mux.HandleFunc("/chaos/status", cs.handleStatus)
	return mux
}

// readTimeline reads, parses, and compiles a timeline from the request
// body, answering the HTTP error itself on failure. Compiling at
// staging time is the contract: a timeline that stages is a timeline
// that will not blow up mid-run.
func (cs *ChaosServer) readTimeline(w http.ResponseWriter, r *http.Request) (*chaos.Timeline, *chaos.Scenario, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxTimeline+1))
	if err != nil {
		http.Error(w, fmt.Sprintf("reading body: %v", err), http.StatusBadRequest)
		return nil, nil, false
	}
	if len(body) > maxTimeline {
		http.Error(w, "timeline too large", http.StatusRequestEntityTooLarge)
		return nil, nil, false
	}
	tl, err := chaos.ParseTimeline(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
		return nil, nil, false
	}
	if tl.Name == "" {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "timeline needs a name"})
		return nil, nil, false
	}
	sc, err := cs.eng.Compile(tl)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, map[string]any{"error": err.Error()})
		return nil, nil, false
	}
	return tl, sc, true
}

func (cs *ChaosServer) handleStage(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	tl, sc, ok := cs.readTimeline(w, r)
	if !ok {
		return
	}
	cs.mu.Lock()
	cs.staged[tl.Name] = tl
	cs.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"staged": tl.Name,
		"steps":  sc.Steps(),
	})
}

func (cs *ChaosServer) handleStart(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var tl *chaos.Timeline
	var sc *chaos.Scenario
	if name := r.URL.Query().Get("name"); name != "" {
		cs.mu.Lock()
		tl = cs.staged[name]
		cs.mu.Unlock()
		if tl == nil {
			writeJSON(w, http.StatusNotFound, map[string]any{"error": fmt.Sprintf("no staged timeline %q", name)})
			return
		}
		// Recompile: the topology is fixed but a stage-then-start pair
		// must behave identically to a one-shot start.
		var err error
		if sc, err = cs.eng.Compile(tl); err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, map[string]any{"error": err.Error()})
			return
		}
	} else {
		var ok bool
		if tl, sc, ok = cs.readTimeline(w, r); !ok {
			return
		}
	}

	cs.mu.Lock()
	if prev := cs.runs[tl.Name]; prev != nil && !prev.Done() {
		cs.mu.Unlock()
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": fmt.Sprintf("timeline %q is already running (stop it first)", tl.Name),
		})
		return
	}
	cs.runs[tl.Name] = cs.eng.PlayRun(sc)
	cs.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"started": tl.Name,
		"steps":   sc.Steps(),
	})
}

func (cs *ChaosServer) handleStop(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	name := r.URL.Query().Get("name")
	cs.mu.Lock()
	var stopped []string
	if name == "" {
		for n, run := range cs.runs {
			run.Stop()
			stopped = append(stopped, n)
		}
	} else if run := cs.runs[name]; run != nil {
		run.Stop()
		stopped = append(stopped, name)
	} else {
		cs.mu.Unlock()
		writeJSON(w, http.StatusNotFound, map[string]any{"error": fmt.Sprintf("no run %q", name)})
		return
	}
	cs.mu.Unlock()
	sort.Strings(stopped)

	cleared := r.URL.Query().Get("clear") == "1"
	if cleared {
		cs.eng.ClearAll()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"stopped": stopped,
		"cleared": cleared,
	})
}

func (cs *ChaosServer) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	links := cs.eng.LinkNames()
	nodes := cs.eng.NodeNames()
	sort.Strings(links)
	sort.Strings(nodes)

	cs.mu.Lock()
	staged := make([]string, 0, len(cs.staged))
	for name := range cs.staged {
		staged = append(staged, name)
	}
	runs := map[string]any{}
	for name, run := range cs.runs {
		fired, total, wasStopped := run.Status()
		runs[name] = map[string]any{
			"fired":   fired,
			"total":   total,
			"stopped": wasStopped,
			"done":    run.Done(),
		}
	}
	cs.mu.Unlock()
	sort.Strings(staged)

	writeJSON(w, http.StatusOK, map[string]any{
		"links":  links,
		"nodes":  nodes,
		"staged": staged,
		"runs":   runs,
	})
}
