package planpd

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"planp.dev/planp/internal/netsim"
	"planp.dev/planp/internal/planprt"
)

const stageForwarder = `
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
`

const stageForwarderV2 = `
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 2, ss))
`

// stageNode boots one netsim node behind a control server.
func stageNode(t *testing.T) (*netsim.Node, string) {
	t.Helper()
	sim := netsim.NewSimulator(1)
	node := netsim.NewNode(sim, "n0", netsim.Addr(0x0A000001))
	srv := httptest.NewServer(NewServer(node, io.Discard).Handler())
	t.Cleanup(srv.Close)
	return node, srv.URL
}

// call performs one request and returns status + decoded JSON body
// (nil body for error responses).
func call(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var decoded map[string]any
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, decoded
}

// aspState reads the node's version state machine.
func aspState(t *testing.T, base string) (active, staged, prev string) {
	t.Helper()
	code, body := call(t, http.MethodGet, base+"/asp", "")
	if code != http.StatusOK {
		t.Fatalf("GET /asp: %d", code)
	}
	return body["active"].(string), body["staged"].(string), body["prev"].(string)
}

// TestStageRejectsBrokenProtocol: phase 1 runs the full verification
// pipeline; a rejected program leaves nothing staged and the node
// untouched.
func TestStageRejectsBrokenProtocol(t *testing.T) {
	node, base := stageNode(t)
	code, _ := call(t, http.MethodPost, base+"/asp/stage?version=v1",
		"fun broken( : int = nonsense")
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("broken stage: %d, want 422", code)
	}
	if _, staged, _ := aspState(t, base); staged != "" {
		t.Errorf("broken program ended up staged: %q", staged)
	}
	if node.Processor != nil {
		t.Error("broken program touched the packet path")
	}
	// Stage without a version label is a client error.
	if code, _ := call(t, http.MethodPost, base+"/asp/stage", stageForwarder); code != http.StatusBadRequest {
		t.Errorf("unlabelled stage: %d, want 400", code)
	}
}

// TestStageActivateCycle walks the full state machine: stage, activate,
// upgrade, rollback — checking the node's packet path at each step.
func TestStageActivateCycle(t *testing.T) {
	node, base := stageNode(t)

	// Stage v1: verified + compiled, but not processing packets.
	code, body := call(t, http.MethodPost, base+"/asp/stage?version=v1", stageForwarder)
	if code != http.StatusOK || body["staged"] != true {
		t.Fatalf("stage v1: %d %v", code, body)
	}
	if node.Processor != nil {
		t.Fatal("staging must not touch the packet path")
	}

	// Activating a version that is not staged is a conflict.
	if code, _ := call(t, http.MethodPost, base+"/asp/activate?version=v9", ""); code != http.StatusConflict {
		t.Fatalf("activate unstaged version: %d, want 409", code)
	}

	// Activate v1: the staged version swaps in.
	code, body = call(t, http.MethodPost, base+"/asp/activate?version=v1", "")
	if code != http.StatusOK || body["active"] != true {
		t.Fatalf("activate v1: %d %v", code, body)
	}
	if node.Processor == nil {
		t.Fatal("activation did not install the processor")
	}
	active, staged, _ := aspState(t, base)
	if active != "v1" || staged != "" {
		t.Fatalf("after activate: active %q staged %q", active, staged)
	}

	// Idempotent replay: re-activating the running version succeeds.
	if code, _ := call(t, http.MethodPost, base+"/asp/activate?version=v1", ""); code != http.StatusOK {
		t.Fatalf("replayed activate: %d, want 200", code)
	}

	// Upgrade: stage v2, activate v2. v1 becomes the rollback target.
	proc1 := node.Processor
	if code, _ := call(t, http.MethodPost, base+"/asp/stage?version=v2", stageForwarderV2); code != http.StatusOK {
		t.Fatalf("stage v2: %d", code)
	}
	if node.Processor != proc1 {
		t.Fatal("staging the upgrade disturbed the running version")
	}
	if code, _ := call(t, http.MethodPost, base+"/asp/activate?version=v2", ""); code != http.StatusOK {
		t.Fatalf("activate v2: %d", code)
	}
	active, _, prev := aspState(t, base)
	if active != "v2" || prev != "v1" {
		t.Fatalf("after upgrade: active %q prev %q, want v2/v1", active, prev)
	}
	if node.Processor == proc1 || node.Processor == nil {
		t.Fatal("upgrade did not swap the processor")
	}

	// Rollback v2: v1 is restored.
	code, body = call(t, http.MethodPost, base+"/asp/rollback?version=v2", "")
	if code != http.StatusOK || body["rolledback"] != true || body["active"] != "v1" {
		t.Fatalf("rollback: %d %v", code, body)
	}
	if active, _, _ := aspState(t, base); active != "v1" {
		t.Fatalf("after rollback: active %q, want v1", active)
	}
	if node.Processor == nil {
		t.Fatal("rollback left the node bare")
	}

	// Rolling back v2 again is an idempotent no-op (it is not active).
	code, body = call(t, http.MethodPost, base+"/asp/rollback?version=v2", "")
	if code != http.StatusOK || body["rolledback"] != false || body["active"] != "v1" {
		t.Fatalf("replayed rollback: %d %v", code, body)
	}
}

// TestStageAbort: DELETE /asp/stage discards the staged version,
// scoped to ?version= when given, idempotently.
func TestStageAbort(t *testing.T) {
	_, base := stageNode(t)
	if code, _ := call(t, http.MethodPost, base+"/asp/stage?version=v1", stageForwarder); code != http.StatusOK {
		t.Fatal("stage failed")
	}
	// Aborting a different version leaves the stage alone.
	if code, body := call(t, http.MethodDelete, base+"/asp/stage?version=v9", ""); code != http.StatusOK || body["staged"] != true {
		t.Fatalf("scoped abort of wrong version: %d %v", code, body)
	}
	if _, staged, _ := aspState(t, base); staged != "v1" {
		t.Fatalf("staged = %q, want v1 intact", staged)
	}
	// Aborting the right version clears it; repeating is a no-op.
	for i := 0; i < 2; i++ {
		if code, body := call(t, http.MethodDelete, base+"/asp/stage?version=v1", ""); code != http.StatusOK || body["staged"] != false {
			t.Fatalf("abort round %d: %d %v", i, code, body)
		}
	}
	if _, staged, _ := aspState(t, base); staged != "" {
		t.Fatalf("staged = %q after abort, want empty", staged)
	}
	// Activating the aborted version now conflicts.
	if code, _ := call(t, http.MethodPost, base+"/asp/activate?version=v1", ""); code != http.StatusConflict {
		t.Errorf("activate after abort: %d, want 409", code)
	}
}

// TestStageReplace: a second stage replaces the first (the controller
// retries stages; the last one wins).
func TestStageReplace(t *testing.T) {
	_, base := stageNode(t)
	if code, _ := call(t, http.MethodPost, base+"/asp/stage?version=v1", stageForwarder); code != http.StatusOK {
		t.Fatal("stage v1 failed")
	}
	if code, _ := call(t, http.MethodPost, base+"/asp/stage?version=v2", stageForwarderV2); code != http.StatusOK {
		t.Fatal("stage v2 failed")
	}
	if _, staged, _ := aspState(t, base); staged != "v2" {
		t.Fatalf("staged = %q, want v2 (replacement)", staged)
	}
	if code, _ := call(t, http.MethodPost, base+"/asp/activate?version=v1", ""); code != http.StatusConflict {
		t.Errorf("activate replaced version: %d, want 409", code)
	}
}

// TestActivateRefusesUnmanagedProtocol: a protocol installed outside
// the server (directly through planprt) is never displaced by an
// activation.
func TestActivateRefusesUnmanagedProtocol(t *testing.T) {
	node, base := stageNode(t)
	rt, err := planprt.Download(node, stageForwarder, planprt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Uninstall()
	occupied := node.Processor

	if code, _ := call(t, http.MethodPost, base+"/asp/stage?version=v1", stageForwarderV2); code != http.StatusOK {
		t.Fatal("staging next to an unmanaged protocol should work")
	}
	if code, _ := call(t, http.MethodPost, base+"/asp/activate?version=v1", ""); code != http.StatusConflict {
		t.Fatalf("activate over unmanaged protocol: %d, want 409", code)
	}
	if node.Processor != occupied {
		t.Fatal("activation disturbed the unmanaged protocol")
	}
}

// TestHealthzReportsActiveVersion: the health probe carries the active
// version, which the fleet controller records as the rollback target.
func TestHealthzReportsActiveVersion(t *testing.T) {
	_, base := stageNode(t)
	code, body := call(t, http.MethodGet, base+"/healthz", "")
	if code != http.StatusOK || body["version"] != "" {
		t.Fatalf("bare healthz: %d %v", code, body)
	}
	call(t, http.MethodPost, base+"/asp/stage?version=v7", stageForwarder)
	call(t, http.MethodPost, base+"/asp/activate?version=v7", "")
	_, body = call(t, http.MethodGet, base+"/healthz", "")
	if body["version"] != "v7" {
		t.Fatalf("healthz version = %v, want v7", body["version"])
	}
}
