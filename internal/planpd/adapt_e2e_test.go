package planpd

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"planp.dev/planp/internal/adapt"
	"planp.dev/planp/internal/apps/httpd"
	"planp.dev/planp/internal/chaos"
	"planp.dev/planp/internal/fleet"
)

// adaptRig is the live adaptation testbed: the §3.2 rtnet cluster with
// chaos wired to its links, the gateway's planpd daemon behind real
// HTTP, and an adaptation controller driving the fleet — wall-clock
// end to end.
type adaptRig struct {
	cluster *Cluster
	eng     *chaos.Engine
	targets []fleet.Target
	fc      *fleet.Controller
	ctl     *adapt.Controller
}

func newAdaptRig(t *testing.T) *adaptRig {
	t.Helper()
	cluster, err := NewCluster(false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	cluster.Start()

	eng := chaos.New(cluster.Net, 11)
	cluster.WireChaos(eng)

	ctlSrv := httptest.NewServer(NewServer(cluster.Gateway, io.Discard).Handler())
	t.Cleanup(ctlSrv.Close)

	fc := fleet.New(fleet.Config{})
	return &adaptRig{
		cluster: cluster,
		eng:     eng,
		targets: []fleet.Target{{Name: "gateway", URL: ctlSrv.URL}},
		fc:      fc,
		ctl:     adapt.New(adapt.Config{Fleet: fc, Logf: t.Logf}),
	}
}

// traffic streams client requests at the virtual server until the
// returned stop function is called — the load the guard metrics and
// policy decisions observe.
func (r *adaptRig) traffic() (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var port atomic.Uint32
	port.Store(20000)
	go func() {
		defer close(done)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				r.cluster.SendRequest(uint16(20000 + port.Add(1)%40000))
			}
		}
	}()
	return func() { cancel(); <-done }
}

func (r *adaptRig) deployPolicy(t *testing.T, name, version string) {
	t.Helper()
	pol, ok := httpd.GatewayPolicyNamed(name)
	if !ok {
		t.Fatalf("no gateway policy %q", name)
	}
	if _, err := r.fc.Deploy(context.Background(),
		fleet.Spec{Version: version, Source: pol.Source, Verify: "single"}, r.targets); err != nil {
		t.Fatalf("deploy %s: %v", name, err)
	}
}

// activeVersion reads the gateway's running version over its control
// API.
func (r *adaptRig) activeVersion(t *testing.T) string {
	t.Helper()
	resp, err := http.Get(r.targets[0].URL + "/asp")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Active string `json:"active"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Active
}

// lossyLinkGuard is the canary guard for the demo: the gateway→server0
// link must not be dropping packets to faults. Chaos loss on that link
// makes the counter climb, which is exactly what the guard catches.
const lossyLinkGuard = "link.gateway:server0.fault_dropped_pkts<=0.5"

// TestAdaptCanaryChaosRollbackE2E: a canary rollout meets a degraded
// network. Chaos puts loss on the gateway→server0 link while the canary
// is under observation; the guard sees the fault-drop rate climb and
// the controller rolls the canary back to the incumbent on its own.
func TestAdaptCanaryChaosRollbackE2E(t *testing.T) {
	r := newAdaptRig(t)
	r.deployPolicy(t, "roundrobin", "v1")
	stop := r.traffic()
	defer stop()

	// Degrade the environment the canary will be judged in. The
	// candidate is the "random" policy — like the incumbent it keeps
	// sending connections at server0, so the lossy link stays on the
	// datapath the guard watches.
	r.eng.Apply(chaos.Loss("gateway-server0", 0.9))

	random, _ := httpd.GatewayPolicyNamed("random")
	guards, err := adapt.ParseGuards([]string{lossyLinkGuard})
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.ctl.Canary(context.Background(), adapt.CanaryPlan{
		Spec:     fleet.Spec{Version: "v2", Source: random.Source, Verify: "single"},
		Canary:   r.targets,
		Guards:   guards,
		Windows:  3,
		Interval: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("canary under chaos must roll back cleanly: %v", err)
	}
	if out.Verdict != adapt.VerdictRolledBack {
		t.Fatalf("verdict = %s (%s), want rolled-back under link loss", out.Verdict, out.Reason)
	}
	if len(out.Violations) == 0 || !strings.Contains(out.Reason, "fault_dropped_pkts") {
		t.Errorf("rollback does not cite the link guard: %q %v", out.Reason, out.Violations)
	}
	if got := r.activeVersion(t); got != "v1" {
		t.Errorf("gateway runs %q after auto-rollback, want v1", got)
	}
	// The fleet history records the whole episode: deploy, canary,
	// rollback with the violation as its reason.
	views := r.fc.Deployments()
	last := views[len(views)-1]
	if last.Kind != "rollback" || !strings.Contains(last.Reason, "guard violated") {
		t.Errorf("last history record = kind %q reason %q, want the guard rollback", last.Kind, last.Reason)
	}
}

// TestAdaptPolicyChaosSwitchE2E is the closed-loop demo: injected link
// faults shift the observed load, the policy engine switches the live
// gateway from round-robin to least-connections (exactly once — the
// cooldown holds through the recovery), and the cluster keeps serving
// after the network heals.
func TestAdaptPolicyChaosSwitchE2E(t *testing.T) {
	r := newAdaptRig(t)
	r.deployPolicy(t, "roundrobin", "roundrobin-v0")
	stop := r.traffic()
	defer stop()

	rr, _ := httpd.GatewayPolicyNamed("roundrobin")
	lc, _ := httpd.GatewayPolicyNamed("leastconn")
	candidates := []adapt.Candidate{
		{Name: rr.Name, Source: rr.Source, Verify: "single"},
		{Name: lc.Name, Source: lc.Source, Verify: "single"},
	}
	// Trend: while the gateway→server0 link is dropping to faults,
	// prefer the variant that steers around sick servers.
	decide := func(windows map[string]adapt.Window) string {
		if windows["gateway"].Rate("link.gateway:server0.fault_dropped_pkts") > 0.5 {
			return lc.Name
		}
		return rr.Name
	}

	// Degrade, then heal mid-run on the chaos timeline.
	r.eng.Apply(chaos.Loss("gateway-server0", 0.9))
	healed := time.AfterFunc(2200*time.Millisecond, func() {
		r.eng.Apply(chaos.Heal())
	})
	defer healed.Stop()

	report, err := r.ctl.RunPolicy(context.Background(), adapt.PolicyPlan{
		Candidates: candidates,
		Decide:     decide,
		Current:    rr.Name,
		Targets:    r.targets,
		Interval:   300 * time.Millisecond,
		Rounds:     12,
		Hysteresis: 2,
		Cooldown:   time.Minute, // hold steady through the healed tail
	})
	if err != nil {
		t.Fatalf("RunPolicy: %v", err)
	}
	if len(report.Switches) != 1 {
		t.Fatalf("switches = %+v, want exactly one (degrade -> leastconn, then hold)", report.Switches)
	}
	if report.Switches[0].From != rr.Name || report.Switches[0].To != lc.Name {
		t.Errorf("switch = %+v, want roundrobin->leastconn", report.Switches[0])
	}
	if got := r.activeVersion(t); !strings.HasPrefix(got, "leastconn-") {
		t.Errorf("gateway runs %q, want a leastconn-* version", got)
	}
	var adaptRecords int
	for _, v := range r.fc.Deployments() {
		if v.Kind == "adapt" && v.State == fleet.StateActive {
			adaptRecords++
			if !strings.Contains(v.Reason, "preferred leastconn over roundrobin") {
				t.Errorf("adapt record reason %q does not explain the decision", v.Reason)
			}
		}
	}
	if adaptRecords != 1 {
		t.Errorf("adapt history records = %d, want 1", adaptRecords)
	}

	// After the heal, the switched gateway still serves: responses keep
	// arriving from the virtual server.
	before, _ := r.cluster.Responses()
	time.Sleep(500 * time.Millisecond)
	after, fromVirtual := r.cluster.Responses()
	if after <= before {
		t.Errorf("no responses after heal: %d -> %d", before, after)
	}
	if fromVirtual == 0 {
		t.Error("no responses masqueraded as the virtual server")
	}
}
