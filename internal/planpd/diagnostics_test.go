package planpd

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// rawCall performs one request and returns status + raw body, so error
// responses can be decoded too.
func rawCall(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

// TestStageRejectionCarriesDiagnostics pins the structured 422 body: a
// rejected stage reports every type error as {pos, end, msg}, not one
// opaque string.
func TestStageRejectionCarriesDiagnostics(t *testing.T) {
	_, base := stageNode(t)
	// Two independent type errors plus a valid channel.
	src := `
val a : int = "not an int"
val b : bool = 3
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
`
	code, raw := rawCall(t, http.MethodPost, base+"/asp/stage?version=v1", src)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("stage: %d, want 422 (body %s)", code, raw)
	}
	var body struct {
		Error       string `json:"error"`
		Diagnostics []struct {
			Pos struct {
				Line int `json:"line"`
				Col  int `json:"col"`
			} `json:"pos"`
			Msg string `json:"msg"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("422 body is not JSON: %q: %v", raw, err)
	}
	if !strings.Contains(body.Error, "stage rejected") {
		t.Errorf("error = %q, want a 'stage rejected' message", body.Error)
	}
	if len(body.Diagnostics) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(body.Diagnostics), body.Diagnostics)
	}
	if body.Diagnostics[0].Pos.Line != 2 || body.Diagnostics[1].Pos.Line != 3 {
		t.Errorf("diagnostic lines = %d, %d; want 2, 3",
			body.Diagnostics[0].Pos.Line, body.Diagnostics[1].Pos.Line)
	}
	for _, d := range body.Diagnostics {
		if d.Pos.Col == 0 || d.Msg == "" {
			t.Errorf("incomplete diagnostic %+v", d)
		}
	}
}

// TestStatusServesActiveSignature pins the signature round-trip: stage
// returns the staged program's channel interface, and once activated
// GET /asp serves it for peers running the compatibility gate.
func TestStatusServesActiveSignature(t *testing.T) {
	_, base := stageNode(t)
	code, body := call(t, http.MethodPost, base+"/asp/stage?version=v1", stageForwarder)
	if code != http.StatusOK {
		t.Fatalf("stage: %d", code)
	}
	sig, ok := body["signature"].(map[string]any)
	if !ok {
		t.Fatalf("stage response has no signature: %v", body)
	}
	chans, _ := sig["channels"].([]any)
	if len(chans) != 1 {
		t.Fatalf("staged signature has %d channels, want 1", len(chans))
	}
	ch := chans[0].(map[string]any)
	if ch["name"] != "network" || ch["packet"] != "ip*udp*blob" {
		t.Errorf("channel signature = %v", ch)
	}

	if code, _ := call(t, http.MethodPost, base+"/asp/activate?version=v1", ""); code != http.StatusOK {
		t.Fatalf("activate: %d", code)
	}
	code, status := call(t, http.MethodGet, base+"/asp", "")
	if code != http.StatusOK {
		t.Fatalf("GET /asp: %d", code)
	}
	if _, ok := status["signature"].(map[string]any); !ok {
		t.Fatalf("GET /asp does not serve the active signature: %v", status)
	}
}
