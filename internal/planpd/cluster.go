// The demo cluster: the §3.2 HTTP load-balancing testbed rebuilt on the
// real-time backend — a client host, the gateway, and two backend
// servers, all live concurrent rtnet nodes. cmd/planpd boots this
// topology and serves the control API for the gateway; the e2e test
// downloads the load-balancing ASP onto the running gateway over real
// HTTP and watches it spread real requests across both servers.
package planpd

import (
	"fmt"
	"sync/atomic"

	"planp.dev/planp/internal/apps/httpd"
	"planp.dev/planp/internal/chaos"
	"planp.dev/planp/internal/rtnet"
	"planp.dev/planp/internal/substrate"
)

// Cluster addresses. The virtual/physical server addresses are fixed by
// the gateway ASP source (asp/http_gateway.planp) and shared with the
// simulator experiment via package httpd.
var (
	clientAddr  = substrate.MustAddr("10.0.1.1")
	gatewayAddr = substrate.MustAddr("10.0.0.1")
)

// Cluster is a live rtnet HTTP cluster: client — gateway — {server0,
// server1}. Requests address the virtual server; without a gateway
// protocol they are forwarded clusterward and die at server0 (no
// binding for the virtual address), which is exactly the state the ASP
// download fixes.
type Cluster struct {
	Net     *rtnet.Net
	Client  *rtnet.Node
	Gateway *rtnet.Node
	Servers [2]*rtnet.Node

	// links retains each duplex link's two directional fault ports,
	// keyed by the chaos-scenario link name, so WireChaos can expose
	// the live cluster to fault timelines.
	links map[string][]substrate.FaultPort

	served      [2]atomic.Int64
	responses   atomic.Int64
	fromVirtual atomic.Int64
}

// NewCluster builds the topology. udp selects loopback-UDP socket links
// (real kernel datagrams via the substrate wire codec) instead of
// in-process channels.
func NewCluster(udp bool) (*Cluster, error) {
	nw := rtnet.New(1)
	c := &Cluster{Net: nw}
	c.Client = rtnet.NewNode(nw, "client", clientAddr)
	c.Gateway = rtnet.NewNode(nw, "gateway", gatewayAddr)
	c.Gateway.Forwarding = true
	c.Servers[0] = rtnet.NewNode(nw, "server0", httpd.Server0Addr)
	c.Servers[1] = rtnet.NewNode(nw, "server1", httpd.Server1Addr)

	c.links = map[string][]substrate.FaultPort{}
	connect := func(name string, a, b *rtnet.Node) (substrate.Iface, substrate.Iface, error) {
		var ab, ba substrate.Iface
		if udp {
			var err error
			ab, ba, err = rtnet.NewUDPLink(nw, a, b, 100_000_000)
			if err != nil {
				return nil, nil, err
			}
		} else {
			ab, ba = rtnet.NewLink(nw, a, b, 100_000_000)
		}
		// Both rtnet interface kinds are fault ports; retain them under
		// the link's chaos name so WireChaos can degrade the link.
		c.links[name] = []substrate.FaultPort{
			ab.(substrate.FaultPort), ba.(substrate.FaultPort),
		}
		return ab, ba, nil
	}

	clIf, gwCl, err := connect("client-gateway", c.Client, c.Gateway)
	if err != nil {
		nw.Close()
		return nil, fmt.Errorf("planpd: client link: %w", err)
	}
	gwS0, s0If, err := connect("gateway-server0", c.Gateway, c.Servers[0])
	if err != nil {
		nw.Close()
		return nil, fmt.Errorf("planpd: server0 link: %w", err)
	}
	gwS1, s1If, err := connect("gateway-server1", c.Gateway, c.Servers[1])
	if err != nil {
		nw.Close()
		return nil, fmt.Errorf("planpd: server1 link: %w", err)
	}

	c.Client.SetDefaultRoute(clIf)
	c.Servers[0].SetDefaultRoute(s0If)
	c.Servers[1].SetDefaultRoute(s1If)
	c.Gateway.AddRoute(clientAddr, gwCl)
	c.Gateway.AddRoute(httpd.Server0Addr, gwS0)
	c.Gateway.AddRoute(httpd.Server1Addr, gwS1)
	// Unrewritten virtual-server traffic heads clusterward, as in the
	// simulator testbed.
	c.Gateway.AddRoute(httpd.VirtualAddr, gwS0)

	// Backend servers: answer each request with a FIN-flagged response.
	for i := range c.Servers {
		i := i
		node := c.Servers[i]
		node.BindTCP(httpd.HTTPPort, func(req *substrate.Packet) {
			if req.TCP == nil || req.TCP.Flags&substrate.FlagSyn == 0 {
				return
			}
			c.served[i].Add(1)
			resp := substrate.NewTCP(node.Address(), req.IP.Src,
				httpd.HTTPPort, req.TCP.SrcPort, 0,
				substrate.FlagAck|substrate.FlagFin, []byte("hello"))
			node.Send(resp.Own())
		})
	}

	// Client: count responses; the gateway protocol must make them
	// appear to come from the virtual server.
	c.Client.BindRaw(func(resp *substrate.Packet) {
		c.responses.Add(1)
		if resp.IP.Src == httpd.VirtualAddr {
			c.fromVirtual.Add(1)
		}
	})
	return c, nil
}

// WireChaos attaches a chaos engine to the live cluster: every duplex
// link is wired under its topology name ("client-gateway",
// "gateway-server0", "gateway-server1") with per-direction fault state
// — whole-link timeline ops still degrade both directions at once, and
// dir:"fwd"/"rev" addresses one (fwd is the first-named node's
// outbound) — and every node is adopted for crash/restart and clock
// skew. Fault timelines can then degrade the cluster while it serves
// traffic, which is what the adaptation demo uses to shift load
// between gateway variants.
func (c *Cluster) WireChaos(eng *chaos.Engine) {
	for name, ports := range c.links {
		eng.WireDuplex(name, ports[:1], ports[1:])
	}
	for _, node := range []*rtnet.Node{c.Client, c.Gateway, c.Servers[0], c.Servers[1]} {
		eng.Adopt(node)
	}
}

// Start launches the cluster's node goroutines.
func (c *Cluster) Start() { c.Net.Start() }

// Close shuts the cluster down.
func (c *Cluster) Close() { c.Net.Close() }

// SendRequest originates one request from the client to the virtual
// server. port identifies the connection — the gateway ASP balances
// per-connection, so distinct ports exercise the policy.
func (c *Cluster) SendRequest(port uint16) {
	req := substrate.NewTCP(clientAddr, httpd.VirtualAddr,
		port, httpd.HTTPPort, 0, substrate.FlagSyn, nil)
	c.Client.Send(req.Own())
}

// Served returns how many requests each backend server answered.
func (c *Cluster) Served() (server0, server1 int64) {
	return c.served[0].Load(), c.served[1].Load()
}

// Responses returns (total responses at the client, responses whose
// source was the virtual server address).
func (c *Cluster) Responses() (total, fromVirtual int64) {
	return c.responses.Load(), c.fromVirtual.Load()
}
