// The node half of the two-phase fleet rollout protocol
// (internal/fleet): stage = verify + compile a version without touching
// packet processing; activate = swap it in atomically, retaining the
// displaced version for rollback; rollback = undo an activation. Every
// transition is idempotent, because the controller retries lost
// responses — a node must converge to the same state no matter how many
// times a phase request is replayed.
//
//	           stage            activate              rollback(v)
//	(bare) ───────────▶ Staged ───────────▶ Active ───────────▶ prev
//	                      │ abort             ▲ │ stage(v')
//	                      ▼                   └─┘  (upgrade cycle)
//	                   (cleared)
package planpd

import (
	"fmt"
	"net/http"

	"planp.dev/planp/internal/planprt"
)

// handleStage implements phase 1 of a rollout.
//
//	POST   /asp/stage?version=v   load the body (verify + compile) and
//	                              hold it; replaces any prior stage
//	DELETE /asp/stage[?version=v] abort: discard the staged version
//	                              (scoped to v when given); idempotent
func (s *Server) handleStage(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.stage(w, r)
	case http.MethodDelete:
		s.abortStage(w, r)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) stage(w http.ResponseWriter, r *http.Request) {
	version := r.URL.Query().Get("version")
	if version == "" {
		http.Error(w, "stage requires a ?version= label", http.StatusBadRequest)
		return
	}
	src, cfg, ok := s.readProtocol(w, r)
	if !ok {
		return
	}
	// Compile-without-activate: the expensive, rejectable work happens
	// here, in phase 1, where failure costs nothing — the node's packet
	// processing is untouched until activate.
	prog, err := planprt.Load(src, cfg)
	if err != nil {
		writeReject(w, http.StatusUnprocessableEntity, fmt.Sprintf("stage rejected: %v", err), err)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.staged = &installed{version: version, source: src, cfg: cfg, prog: prog}
	writeJSON(w, http.StatusOK, map[string]any{
		"staged":    true,
		"version":   version,
		"node":      s.node.Hostname(),
		"engine":    string(cfg.Engine),
		"signature": prog.Signature(),
	})
}

func (s *Server) abortStage(w http.ResponseWriter, r *http.Request) {
	version := r.URL.Query().Get("version")
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.staged != nil && (version == "" || s.staged.version == version) {
		s.staged = nil
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"staged": s.staged != nil,
		"node":   s.node.Hostname(),
	})
}

// handleActivate implements phase 2: POST /asp/activate?version=v swaps
// the staged version in. The displaced version is retained as the
// rollback target. Re-activating the already-active version succeeds
// without side effects (retry of a lost response).
func (s *Server) handleActivate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	version := r.URL.Query().Get("version")
	if version == "" {
		http.Error(w, "activate requires a ?version= label", http.StatusBadRequest)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active != nil && s.active.version == version {
		// Idempotent replay: this version already runs.
		writeJSON(w, http.StatusOK, map[string]any{
			"active": true, "version": version, "node": s.node.Hostname(),
		})
		return
	}
	if s.staged == nil || s.staged.version != version {
		http.Error(w, fmt.Sprintf("version %q is not staged (staged: %q)", version, versionOf(s.staged)),
			http.StatusConflict)
		return
	}
	if s.active == nil && s.node.CurrentProcessor() != nil {
		// A protocol the server does not manage (installed through
		// planprt directly) occupies the node; refuse to displace it.
		http.Error(w, "node runs an unmanaged protocol", http.StatusConflict)
		return
	}

	old := s.active
	if old != nil {
		old.rt.Uninstall()
		old.rt = nil
	}
	st := s.staged
	rt, err := planprt.Install(s.node, st.prog, s.out)
	if err != nil {
		// Activation failed (e.g. the single-node install limit). Put
		// the displaced version back so a failed activate never leaves
		// the node bare; the staged version stays for a retry or abort.
		if old != nil {
			if oldRT, restoreErr := planprt.Install(s.node, old.prog, s.out); restoreErr == nil {
				old.rt = oldRT
				s.active = old
			} else {
				s.active = nil
			}
		}
		http.Error(w, fmt.Sprintf("activate rejected: %v", err), http.StatusUnprocessableEntity)
		return
	}
	st.rt = rt
	s.active = st
	s.staged = nil
	s.prev = old
	writeJSON(w, http.StatusOK, map[string]any{
		"active": true, "version": version, "node": s.node.Hostname(),
		"previous": versionOf(old),
	})
}

// handleRollback undoes an activation: POST /asp/rollback?version=v
// means "return to the state from before version v ran". If v is
// active it is withdrawn and the previously active version (possibly
// none) is restored. If v is not active — it never activated here, or
// a prior rollback already ran — the request succeeds without side
// effects, which is what makes controller retries safe.
func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	version := r.URL.Query().Get("version")
	if version == "" {
		http.Error(w, "rollback requires a ?version= label", http.StatusBadRequest)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil || s.active.version != version {
		writeJSON(w, http.StatusOK, map[string]any{
			"rolledback": false, "active": versionOf(s.active), "node": s.node.Hostname(),
		})
		return
	}
	s.active.rt.Uninstall()
	s.active.rt = nil
	s.active = nil
	if s.prev != nil {
		rt, err := planprt.Install(s.node, s.prev.prog, s.out)
		if err != nil {
			// The previous version no longer installs (it should — its
			// install slot was just released). The node is left bare
			// rather than running the rolled-back version.
			http.Error(w, fmt.Sprintf("rollback could not restore %q: %v", s.prev.version, err),
				http.StatusInternalServerError)
			s.prev = nil
			return
		}
		s.prev.rt = rt
		s.active = s.prev
		s.prev = nil
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"rolledback": true, "active": versionOf(s.active), "node": s.node.Hostname(),
	})
}
