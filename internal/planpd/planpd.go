// Package planpd is the ASP download daemon: the control plane that
// makes "active networking" operational. It exposes a small HTTP API
// over one live substrate node — download a PLAN-P protocol onto it
// (compile, late-check, install: §2.1's download-time pipeline),
// withdraw it, and read its counters — while the node keeps processing
// real traffic on the real-time backend (internal/rtnet).
//
// This is the reproduction's stand-in for the paper's protocol
// management daemon on the Solaris kernel module (§4): the transport is
// HTTP instead of the paper's authenticated channel, but the lifecycle
// is the same — a protocol arrives as source over the wire, is verified
// and compiled on the node, and starts intercepting packets without the
// node ever stopping.
package planpd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"planp.dev/planp/internal/planprt"
	"planp.dev/planp/internal/substrate"
)

// maxASPSource bounds an uploaded protocol: far above any real ASP
// (the largest in-tree program is ~5 KB) while keeping hostile uploads
// cheap to reject.
const maxASPSource = 1 << 20

// Server is the control-plane HTTP API for one node.
type Server struct {
	node substrate.Node
	out  io.Writer // ASP print/println destination

	mu sync.Mutex
	rt *planprt.Runtime
}

// NewServer returns a control server managing node. out receives the
// installed protocol's print output (nil discards it).
func NewServer(node substrate.Node, out io.Writer) *Server {
	if out == nil {
		out = io.Discard
	}
	return &Server{node: node, out: out}
}

// Handler returns the control API:
//
//	POST   /asp      install the PLAN-P source in the request body
//	                 (query: engine=interp|bytecode|jit,
//	                         verify=network|single|privileged)
//	DELETE /asp      withdraw the installed protocol
//	GET    /stats    metrics registry snapshot (JSON, name -> value)
//	GET    /healthz  liveness + whether a protocol is installed
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/asp", s.handleASP)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

func (s *Server) handleASP(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.install(w, r)
	case http.MethodDelete:
		s.uninstall(w)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) install(w http.ResponseWriter, r *http.Request) {
	src, err := io.ReadAll(io.LimitReader(r.Body, maxASPSource+1))
	if err != nil {
		http.Error(w, fmt.Sprintf("reading body: %v", err), http.StatusBadRequest)
		return
	}
	if len(src) > maxASPSource {
		http.Error(w, "protocol source too large", http.StatusRequestEntityTooLarge)
		return
	}

	cfg := planprt.Config{Output: s.out}
	switch e := r.URL.Query().Get("engine"); e {
	case "", "jit":
		cfg.Engine = planprt.EngineJIT
	case "bytecode":
		cfg.Engine = planprt.EngineBytecode
	case "interp":
		cfg.Engine = planprt.EngineInterp
	default:
		http.Error(w, fmt.Sprintf("unknown engine %q", e), http.StatusBadRequest)
		return
	}
	switch v := r.URL.Query().Get("verify"); v {
	case "", "network":
		cfg.Verify = planprt.VerifyNetwork
	case "single":
		cfg.Verify = planprt.VerifySingleNode
	case "privileged":
		cfg.Verify = planprt.VerifyPrivileged
	default:
		http.Error(w, fmt.Sprintf("unknown verify policy %q", v), http.StatusBadRequest)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.node.CurrentProcessor() != nil {
		http.Error(w, "node already runs a protocol (DELETE /asp first)", http.StatusConflict)
		return
	}
	rt, err := planprt.Download(s.node, string(src), cfg)
	if err != nil {
		// Parse/type/verify rejection: the protocol is at fault, not
		// the request framing.
		http.Error(w, fmt.Sprintf("download rejected: %v", err), http.StatusUnprocessableEntity)
		return
	}
	s.rt = rt
	writeJSON(w, http.StatusOK, map[string]any{
		"installed": true,
		"node":      s.node.Hostname(),
		"engine":    string(cfg.Engine),
	})
}

func (s *Server) uninstall(w http.ResponseWriter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rt == nil {
		http.Error(w, "no protocol installed", http.StatusNotFound)
		return
	}
	s.rt.Uninstall()
	s.rt = nil
	writeJSON(w, http.StatusOK, map[string]any{
		"installed": false,
		"node":      s.node.Hostname(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, s.node.Env().Metrics().Snapshot())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":   true,
		"node": s.node.Hostname(),
		"asp":  s.node.CurrentProcessor() != nil,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
