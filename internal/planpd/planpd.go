// Package planpd is the ASP download daemon: the control plane that
// makes "active networking" operational. It exposes a small HTTP API
// over one live substrate node — download a PLAN-P protocol onto it
// (compile, late-check, install: §2.1's download-time pipeline),
// withdraw it, and read its counters — while the node keeps processing
// real traffic on the real-time backend (internal/rtnet).
//
// This is the reproduction's stand-in for the paper's protocol
// management daemon on the Solaris kernel module (§4): the transport is
// HTTP instead of the paper's authenticated channel, but the lifecycle
// is the same — a protocol arrives as source over the wire, is verified
// and compiled on the node, and starts intercepting packets without the
// node ever stopping.
//
// Beyond the one-shot install path, the server implements the node half
// of the fleet rollout protocol (internal/fleet): a protocol version
// can be STAGED — verified and compiled but not yet intercepting
// packets — and later ACTIVATED or aborted, with the previously active
// version retained for rollback. See docs/DEPLOYMENT.md for the state
// machine and the two-phase commit built on top of it.
package planpd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"planp.dev/planp/internal/lang/diag"
	"planp.dev/planp/internal/planprt"
	"planp.dev/planp/internal/substrate"
)

// maxASPSource bounds an uploaded protocol: far above any real ASP
// (the largest in-tree program is ~5 KB) while keeping hostile uploads
// cheap to reject.
const maxASPSource = 1 << 20

// installed is one protocol version known to the node: staged (rt nil),
// active (rt set), or retained as the rollback target.
type installed struct {
	version string
	source  string
	cfg     planprt.Config
	prog    *planprt.Program
	rt      *planprt.Runtime
}

// Server is the control-plane HTTP API for one node.
type Server struct {
	node substrate.Node
	out  io.Writer // ASP print/println destination

	mu     sync.Mutex
	active *installed // currently intercepting packets, or nil
	staged *installed // loaded but not activated, or nil
	prev   *installed // previously active version (rollback target)
}

// NewServer returns a control server managing node. out receives the
// installed protocol's print output (nil discards it).
func NewServer(node substrate.Node, out io.Writer) *Server {
	if out == nil {
		out = io.Discard
	}
	return &Server{node: node, out: out}
}

// Handler returns the control API:
//
//	POST   /asp           install the PLAN-P source in the request body
//	                      (query: engine=interp|bytecode|jit,
//	                              verify=network|single|privileged,
//	                              version=<label>)
//	GET    /asp           protocol status (active/staged/prev versions)
//	DELETE /asp           withdraw the installed protocol
//	POST   /asp/stage     phase 1 of a rollout: verify + compile the
//	                      body under ?version= without activating
//	DELETE /asp/stage     abort a staged version
//	POST   /asp/activate  phase 2: swap the staged ?version= in,
//	                      retaining the previous version for rollback
//	POST   /asp/rollback  undo an activation of ?version=, restoring
//	                      the previously active version (or bare node)
//	GET    /stats         metrics registry snapshot: {"node", "mono_ns"
//	                      (ns on the node's substrate clock — carries
//	                      chaos-injected skew), "stats": {name -> value}}
//	GET    /healthz       liveness, installed protocol, active version
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/asp", s.handleASP)
	mux.HandleFunc("/asp/stage", s.handleStage)
	mux.HandleFunc("/asp/activate", s.handleActivate)
	mux.HandleFunc("/asp/rollback", s.handleRollback)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealth)
	return mux
}

func (s *Server) handleASP(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.install(w, r)
	case http.MethodGet:
		s.status(w)
	case http.MethodDelete:
		s.uninstall(w)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// readProtocol reads and bounds the uploaded source and decodes the
// engine/verify query parameters. On failure it has already written the
// HTTP error.
func (s *Server) readProtocol(w http.ResponseWriter, r *http.Request) (src string, cfg planprt.Config, ok bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxASPSource+1))
	if err != nil {
		http.Error(w, fmt.Sprintf("reading body: %v", err), http.StatusBadRequest)
		return "", cfg, false
	}
	if len(body) > maxASPSource {
		http.Error(w, "protocol source too large", http.StatusRequestEntityTooLarge)
		return "", cfg, false
	}
	cfg = planprt.Config{Output: s.out}
	switch e := r.URL.Query().Get("engine"); e {
	case "", "jit":
		cfg.Engine = planprt.EngineJIT
	case "bytecode":
		cfg.Engine = planprt.EngineBytecode
	case "interp":
		cfg.Engine = planprt.EngineInterp
	default:
		http.Error(w, fmt.Sprintf("unknown engine %q", e), http.StatusBadRequest)
		return "", cfg, false
	}
	switch v := r.URL.Query().Get("verify"); v {
	case "", "network":
		cfg.Verify = planprt.VerifyNetwork
	case "single":
		cfg.Verify = planprt.VerifySingleNode
	case "privileged":
		cfg.Verify = planprt.VerifyPrivileged
	default:
		http.Error(w, fmt.Sprintf("unknown verify policy %q", v), http.StatusBadRequest)
		return "", cfg, false
	}
	return string(body), cfg, true
}

// install is the one-shot download path: load (compile without
// activate) and activate in a single request. It refuses to replace a
// running protocol — upgrades go through stage/activate.
func (s *Server) install(w http.ResponseWriter, r *http.Request) {
	src, cfg, ok := s.readProtocol(w, r)
	if !ok {
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.node.CurrentProcessor() != nil {
		http.Error(w, "node already runs a protocol (DELETE /asp first, or stage/activate to upgrade)", http.StatusConflict)
		return
	}
	prog, err := planprt.Load(src, cfg)
	if err != nil {
		// Parse/type/verify rejection: the protocol is at fault, not
		// the request framing.
		writeReject(w, http.StatusUnprocessableEntity, fmt.Sprintf("download rejected: %v", err), err)
		return
	}
	rt, err := planprt.Install(s.node, prog, s.out)
	if err != nil {
		writeReject(w, http.StatusUnprocessableEntity, fmt.Sprintf("install rejected: %v", err), err)
		return
	}
	s.active = &installed{
		version: r.URL.Query().Get("version"),
		source:  src, cfg: cfg, prog: prog, rt: rt,
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"installed": true,
		"node":      s.node.Hostname(),
		"engine":    string(cfg.Engine),
		"version":   s.active.version,
	})
}

func (s *Server) uninstall(w http.ResponseWriter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		http.Error(w, "no protocol installed", http.StatusNotFound)
		return
	}
	s.active.rt.Uninstall()
	s.active.rt = nil
	s.active = nil
	writeJSON(w, http.StatusOK, map[string]any{
		"installed": false,
		"node":      s.node.Hostname(),
	})
}

// status reports the node's protocol state machine: which version is
// active, which is staged, and which would a rollback restore. The
// fleet controller reconciles ambiguous activations (lost responses,
// nodes dying mid-phase) against this.
func (s *Server) status(w http.ResponseWriter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := map[string]any{
		"node":   s.node.Hostname(),
		"asp":    s.active != nil,
		"active": versionOf(s.active),
		"staged": versionOf(s.staged),
		"prev":   versionOf(s.prev),
	}
	// The active version's channel-interface signature, for peers (the
	// fleet compatibility gate) deciding whether a new version can
	// coexist with what this node runs.
	if s.active != nil {
		resp["signature"] = s.active.prog.Signature()
	}
	writeJSON(w, http.StatusOK, resp)
}

func versionOf(in *installed) string {
	if in == nil {
		return ""
	}
	return in.version
}

// handleStats serves a registry snapshot stamped with a monotonic
// timestamp (nanoseconds on the node's substrate clock). Pollers
// computing windowed rates divide counter deltas by mono_ns deltas
// from the same response, so a pair of snapshots is always internally
// consistent: the rate never mixes one poll's counters with another
// poll's guess at elapsed time.
//
// The stamp is the SUBSTRATE's clock (substrate.Env.Now), not Go's
// process clock, deliberately: on rtnet that clock carries any
// chaos-injected skew, so a skewed host's distorted rate windows are
// observable through this endpoint — the distributed-testbed failure
// mode the clock-skew primitive exists to reproduce.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"node":    s.node.Hostname(),
		"mono_ns": s.node.Env().Now().Nanoseconds(),
		"stats":   s.node.Env().Metrics().Snapshot(),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	version := versionOf(s.active)
	var sig any
	if s.active != nil {
		if sg := s.active.prog.Signature(); sg != nil {
			sig = sg
		}
	}
	s.mu.Unlock()
	resp := map[string]any{
		"ok":      true,
		"node":    s.node.Hostname(),
		"asp":     s.node.CurrentProcessor() != nil,
		"version": version,
	}
	// The active version's channel-interface signature rides the health
	// probe so the fleet's compatibility gate needs no extra round-trip.
	if sig != nil {
		resp["signature"] = sig
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeReject reports a rejected protocol as structured JSON: the
// rendered error plus the individual span-carrying diagnostics, so the
// deploy tooling can point at the offending source lines instead of
// echoing one opaque string.
//
//	{"error": "stage rejected: ...", "diagnostics": [{"pos": {...}, "end": {...}, "msg": "..."}]}
func writeReject(w http.ResponseWriter, status int, msg string, err error) {
	body := map[string]any{"error": msg}
	if ds := diag.Of(err); len(ds) > 0 {
		body["diagnostics"] = ds
	}
	writeJSON(w, status, body)
}
