package planpd

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"planp.dev/planp/asp"
)

// driveE2E runs the full live-download story against a cluster: boot the
// nodes, download the load-balancing ASP onto the RUNNING gateway over
// real HTTP, fire requests at the virtual server, and check they were
// answered by both physical servers with responses masqueraded as the
// virtual one.
func driveE2E(t *testing.T, udp bool) {
	cluster, err := NewCluster(udp)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.Start()

	ctl := httptest.NewServer(NewServer(cluster.Gateway, io.Discard).Handler())
	defer ctl.Close()

	// The daemon is alive and no protocol is installed yet.
	var health struct {
		OK   bool   `json:"ok"`
		Node string `json:"node"`
		ASP  bool   `json:"asp"`
	}
	getJSON(t, ctl.URL+"/healthz", &health)
	if !health.OK || health.Node != "gateway" || health.ASP {
		t.Fatalf("unexpected health: %+v", health)
	}

	// Download the gateway ASP onto the live node.
	resp, err := http.Post(ctl.URL+"/asp?verify=single", "text/plain",
		strings.NewReader(asp.HTTPGateway))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /asp: %d: %s", resp.StatusCode, body)
	}
	getJSON(t, ctl.URL+"/healthz", &health)
	if !health.ASP {
		t.Fatalf("healthz does not report the installed protocol")
	}

	// A second download must be refused while one is installed.
	resp, err = http.Post(ctl.URL+"/asp?verify=single", "text/plain",
		strings.NewReader(asp.HTTPGateway))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second POST /asp: got %d, want 409", resp.StatusCode)
	}

	// Serve real traffic through the downloaded protocol.
	const requests = 120
	for i := 0; i < requests; i++ {
		cluster.SendRequest(uint16(20000 + i))
	}
	if !cluster.Net.Quiesce(20 * time.Second) {
		t.Fatalf("cluster did not quiesce")
	}

	s0, s1 := cluster.Served()
	if s0+s1 < 100 {
		t.Fatalf("servers answered %d+%d requests, want >= 100 of %d", s0, s1, requests)
	}
	if s0 == 0 || s1 == 0 {
		t.Fatalf("load balancing failed: server0=%d server1=%d", s0, s1)
	}
	total, fromVirtual := cluster.Responses()
	if fromVirtual < 100 {
		t.Fatalf("client saw %d responses, only %d from the virtual server", total, fromVirtual)
	}

	// The stats endpoint reflects the traffic and stamps the snapshot
	// with a monotonic timestamp for windowed-rate pollers.
	var stats struct {
		Node   string           `json:"node"`
		MonoNS int64            `json:"mono_ns"`
		Stats  map[string]int64 `json:"stats"`
	}
	getJSON(t, ctl.URL+"/stats", &stats)
	if stats.Stats["node.gateway.received_pkts"] == 0 {
		t.Fatalf("stats show no gateway traffic: %v", stats.Stats)
	}
	if stats.MonoNS <= 0 {
		t.Fatalf("stats snapshot missing monotonic timestamp: %d", stats.MonoNS)
	}

	// Withdraw the protocol: the cluster falls back to dumb forwarding,
	// so new requests to the virtual address go unanswered.
	req, _ := http.NewRequest(http.MethodDelete, ctl.URL+"/asp", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /asp: %d", resp.StatusCode)
	}
	getJSON(t, ctl.URL+"/healthz", &health)
	if health.ASP {
		t.Fatalf("healthz still reports a protocol after DELETE")
	}
	before0, before1 := cluster.Served()
	cluster.SendRequest(30000)
	cluster.Net.Quiesce(5 * time.Second)
	after0, after1 := cluster.Served()
	if after0 != before0 || after1 != before1 {
		t.Fatalf("requests still balanced after uninstall")
	}
}

// TestGatewayDownloadE2E: in-process channel links.
func TestGatewayDownloadE2E(t *testing.T) {
	driveE2E(t, false)
}

// TestGatewayDownloadE2E_UDP: the same story over loopback-UDP socket
// links — the packets really cross the kernel.
func TestGatewayDownloadE2E_UDP(t *testing.T) {
	driveE2E(t, true)
}

// TestInstallRejectsBrokenProtocol: the download pipeline's late
// checking surfaces as an HTTP-level rejection, not an install.
func TestInstallRejectsBrokenProtocol(t *testing.T) {
	cluster, err := NewCluster(false)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.Start()
	ctl := httptest.NewServer(NewServer(cluster.Gateway, io.Discard).Handler())
	defer ctl.Close()

	resp, err := http.Post(ctl.URL+"/asp", "text/plain",
		strings.NewReader("fun broken( : int = nonsense"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("broken protocol: got %d, want 422", resp.StatusCode)
	}
	if cluster.Gateway.CurrentProcessor() != nil {
		t.Fatalf("broken protocol ended up installed")
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
