// Public observability surface: re-exports of the internal/obs event
// bus and metrics registry so users can watch a network without
// importing internal packages.
//
// Two complementary views exist. The EVENT BUS streams one typed Event
// per packet-level decision (enqueue, drop, forward, deliver, ASP
// invocation, verification rejection) to subscribers attached with
// WithObserver or Network.Events(); with no subscribers the publish
// sites cost nothing. The METRICS registry (Network.Metrics()) holds
// cumulative counters, gauges, histograms, and time series — node
// traffic under "node.<name>.*", per-ASP statistics under
// "asp.<node>.*", plus whatever series an experiment registers.
package planp

import "planp.dev/planp/internal/obs"

type (
	// Event is one observed packet-level occurrence. Its String method
	// renders a pcap-style text line.
	Event = obs.Event
	// EventKind classifies an Event.
	EventKind = obs.Kind
	// Observer consumes events; it is called synchronously from the
	// simulator's single-threaded event loop in subscription order.
	Observer = obs.Subscriber
	// ObserverFunc adapts a function to the Observer interface.
	ObserverFunc = obs.Func
	// EventBus fans events out to observers (see Network.Events).
	EventBus = obs.Bus
	// EventRing is a fixed-size "flight recorder" observer keeping the
	// most recent events.
	EventRing = obs.Ring
	// EventCounts tallies events by kind.
	EventCounts = obs.CountingSink
	// Metrics is the registry all simulation statistics are recorded
	// in (see Network.Metrics).
	Metrics = obs.Registry
	// Series is an append-only (time, value) sequence registered in
	// the Metrics registry by experiments.
	Series = obs.Series
)

// Event kinds published by the network substrate and the ASP runtime.
const (
	// EventEnqueue: a link or segment accepted a packet for
	// serialization.
	EventEnqueue = obs.KindEnqueue
	// EventDrop: a packet was discarded; Event.Detail carries the
	// reason ("queue", "ttl", "no-route", "no-binding").
	EventDrop = obs.KindDrop
	// EventForward: a router forwarded a packet.
	EventForward = obs.KindForward
	// EventDeliver: a packet reached a local application.
	EventDeliver = obs.KindDeliver
	// EventASPInvoke: an installed protocol handled a packet;
	// Event.Detail is the channel name.
	EventASPInvoke = obs.KindASPInvoke
	// EventVerifyReject: a protocol download was refused by late
	// checking.
	EventVerifyReject = obs.KindVerifyReject
)

// NewEventRing returns a flight-recorder observer holding the most
// recent n events; attach it with WithObserver or Events().Subscribe.
func NewEventRing(n int) *EventRing { return obs.NewRing(n) }
