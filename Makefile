# Tier-1 verification: everything `make verify` runs must pass before a
# change lands. `go vet` and the race detector are part of the gate —
# the metrics registry promises race-clean concurrent reads, so the
# -race run is what keeps that promise honest.

GO ?= go

.PHONY: all build test vet staticcheck race verify bench bench-scale experiments clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck is part of the gate where the binary exists (CI installs
# it); locally it degrades to a skip so `make verify` never depends on
# tooling the repo cannot vendor.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

race:
	$(GO) test -race ./...

verify: build vet staticcheck test race

# Hot-path benchmarks: the event queue, the timing wheel (on and off,
# same load), batched link delivery, the copy-on-write fan-out, the
# observed-vs-unobserved forwarding pair that bounds the event bus's
# no-op overhead, and one full sweep through the parallel experiment
# driver. Raw `go test -bench` text (benchstat-comparable) goes to
# stdout; benchjson distills ns/op + allocs/op into BENCH_core.json,
# preserving the pre-rewrite baseline block already in that file.
HOT_BENCH = BenchmarkEventQueue$$|BenchmarkTimerWheel$$|BenchmarkTimerWheelOff$$|BenchmarkBatchedDelivery$$|BenchmarkPacketFanout$$|BenchmarkSimulatorForwarding$$|BenchmarkSimulatorForwardingObserved$$|BenchmarkAspbenchSweep$$

bench:
	$(GO) test -run '^$$' -bench '$(HOT_BENCH)' -benchmem -count=3 . | $(GO) run ./cmd/benchjson -o BENCH_core.json

# City-scale sharded-simulation throughput: the full metropolitan city
# (10k+ edge routers, ~1M modeled clients) at 1 and 4 shards. Each run
# is a single full simulation (-benchtime 1x), repeated 3x and averaged;
# benchjson carries the events/s and pkts/s/core ReportMetric units into
# BENCH_scale.json.
SCALE_BENCH = BenchmarkCityScale1$$|BenchmarkCityScale4$$

bench-scale:
	$(GO) test -run '^$$' -bench '$(SCALE_BENCH)' -benchtime 1x -count=3 -timeout 30m . | $(GO) run ./cmd/benchjson -o BENCH_scale.json \
		-note "City-scale sharded-simulation snapshot (full metropolitan city); regenerate with \`make bench-scale\`. Values are means over -count full runs; pkts/s/core divides by min(shards, GOMAXPROCS) — on a single-core machine the 4-shard gain comes from smaller per-shard heaps, not parallelism. See docs/PERFORMANCE.md."

# Regenerate every paper figure/table.
experiments:
	$(GO) run ./cmd/aspbench -exp all

clean:
	$(GO) clean ./...
