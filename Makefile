# Tier-1 verification: everything `make verify` runs must pass before a
# change lands. `go vet` and the race detector are part of the gate —
# the metrics registry promises race-clean concurrent reads, so the
# -race run is what keeps that promise honest.

GO ?= go

.PHONY: all build test vet race verify bench experiments clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

verify: build vet test race

# Hot-path benchmarks, including the observed-vs-unobserved forwarding
# pair that bounds the event bus's no-op overhead.
bench:
	$(GO) test -run xxx -bench 'BenchmarkSimulatorForwarding' -benchmem -count=3 .

# Regenerate every paper figure/table.
experiments:
	$(GO) run ./cmd/aspbench -exp all

clean:
	$(GO) clean ./...
