// MPEGShare: the §3.3 experiment as a runnable demo — multipoint video
// delivery from an unmodified point-to-point server.
//
// Four viewers on one segment watch the same stream. Without the ASPs
// the server opens four connections and sends every frame four times;
// with the monitor + capture ASPs it serves exactly one connection and
// the segment carries the stream once.
//
//	go run ./examples/mpegshare
package main

import (
	"fmt"
	"log"
	"time"

	"planp.dev/planp/internal/apps/mpeg"
)

func main() {
	for _, useASPs := range []bool{false, true} {
		res, err := mpeg.Run(mpeg.Options{Viewers: 4, UseASPs: useASPs}, 20*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		mode := "point-to-point (no ASPs)"
		if useASPs {
			mode = "shared via monitor/capture ASPs"
		}
		fmt.Printf("%s:\n", mode)
		fmt.Printf("  server connections: %d\n", res.ServerConnections)
		fmt.Printf("  frames sent by server: %d (%.1f MB)\n", res.ServerFrames, float64(res.ServerBytes)/1e6)
		for i, f := range res.ViewerFrames {
			fmt.Printf("  viewer %d received %d frames\n", i+1, f)
		}
		fmt.Println()
	}
	fmt.Println("the server never learned it had four viewers.")
}
