// Audiocast: the §3.1 experiment as a runnable demo — audio broadcasting
// with in-router bandwidth adaptation.
//
// A source multicasts 16-bit stereo audio (176 kb/s) through a router
// onto a 10 Mb/s client segment. A load generator floods the segment in
// steps; the router ASP degrades the audio per the measured link load,
// and the client ASP restores packets so the unmodified player keeps
// playing. The program prints the per-phase audio bandwidth — the
// figure-6 staircase.
//
//	go run ./examples/audiocast
package main

import (
	"fmt"
	"log"
	"time"

	"planp.dev/planp/internal/apps/audio"
	"planp.dev/planp/internal/netsim/loadgen"
)

func main() {
	tb, err := audio.NewTestbed(audio.Options{Adaptation: audio.AdaptASP})
	if err != nil {
		log.Fatal(err)
	}

	// A compressed version of the paper's timeline: 0-20s quiet,
	// 20-40s heavy load, 40-60s light load.
	const (
		end   = 60 * time.Second
		heavy = 9_300_000
		light = 5_500_000
	)
	gen := &loadgen.Generator{
		Node: tb.LoadGen, Dst: tb.SinkAddr(), DstPort: 40000,
		Steps: []loadgen.Step{
			{At: 0, Bps: 0},
			{At: 20 * time.Second, Bps: heavy},
			{At: 40 * time.Second, Bps: light},
		},
	}
	gen.Start(tb.Sim, end)
	tb.Source.Start(tb.Sim, end)

	fmt.Println("time(s)  audio kb/s  quality")
	for t := 2 * time.Second; t <= end; t += 2 * time.Second {
		tb.Sim.RunUntil(t)
		rate := tb.Wire.At(t) / 1000
		quality := "16-bit stereo"
		switch {
		case rate < 60:
			quality = "8-bit mono"
		case rate < 120:
			quality = "16-bit mono"
		}
		fmt.Printf("%6.0f  %9.1f  %s\n", t.Seconds(), rate, quality)
	}
	tb.Client.Finish(end)

	fmt.Printf("\nplayback gaps: %d (the client ASP kept every packet playable: %d unplayable)\n",
		tb.Client.Gaps.Gaps(), tb.Client.Unplayable)
	st := tb.RouterRT.Stats()
	fmt.Printf("router ASP processed %d packets with %d exceptions\n",
		st.Processed, st.Errors)
}
