// HTTPBalance: the §3.2 extensible cluster server as a runnable demo.
//
// Two simulated Apache servers sit behind a gateway running the
// load-balancing ASP of figure 2. Clients replay a synthetic trace
// against the virtual server address at increasing offered loads; the
// demo prints the served-throughput curve and the balance across the
// physical servers — the figure-8 measurement in miniature.
//
//	go run ./examples/httpbalance
package main

import (
	"fmt"
	"log"
	"time"

	"planp.dev/planp/internal/apps/httpd"
)

func main() {
	fmt.Println("offered(req/s)  served(req/s)  mean-latency")
	for _, offered := range []float64{100, 200, 300, 400, 500, 600, 700} {
		pt, err := httpd.RunPoint(httpd.Config{Variant: httpd.VariantASPGW}, offered,
			12*time.Second, 3*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%14.0f  %13.0f  %12v\n", pt.OfferedRPS, pt.ServedRPS, pt.MeanLat.Round(time.Millisecond))
	}

	// One deeper look: where does the load go?
	tb, err := httpd.NewTestbed(httpd.Config{Variant: httpd.VariantASPGW})
	if err != nil {
		log.Fatal(err)
	}
	tr := httpd.NewTrace(httpd.TraceConfig{Accesses: 5000, Documents: 500, ZipfS: 1.2, MeanSize: 6000, Seed: 7})
	c := httpd.NewClient(tb.Clients[0], httpd.VirtualAddr, 200, tr)
	c.Start(10*time.Second, time.Second)
	tb.Sim.RunUntil(11 * time.Second)

	fmt.Printf("\nafter 10s at 200 req/s via the virtual address:\n")
	fmt.Printf("  server A served %d requests\n", tb.ServerA.Served)
	fmt.Printf("  server B served %d requests\n", tb.ServerB.Served)
	fmt.Printf("  client completed %d (mean latency %v)\n", c.Completed, c.MeanLatency().Round(time.Millisecond))
	fmt.Printf("  gateway ASP state: %s connections balanced\n", tb.GwRT.Instance().Proto)
}
