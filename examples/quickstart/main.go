// Quickstart: write an ASP, verify it, download it into a router, and
// watch it rewrite live traffic.
//
// The protocol is a tiny firewall/redirector: TCP traffic for port 8080
// on the old server is transparently redirected to a new server, and
// everything else passes through — the application-adaptation move of
// the paper in ten lines of PLAN-P.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	planp "planp.dev/planp"
)

const protocol = `
-- Redirect traffic for the retired server 10.0.2.1:8080 to its
-- replacement at 10.0.2.2, without touching either application.
val oldServer : host = 10.0.2.1
val newServer : host = 10.0.2.2

channel network(ps : int, ss : unit, p : ip*tcp*blob) is
  if ipDst(#1 p) = oldServer andalso tcpDst(#2 p) = 8080 then
    (println("redirecting connection from " ^ hostToString(ipSrc(#1 p)));
     OnRemote(network, (ipDestSet(#1 p, newServer), #2 p, #3 p));
     (ps + 1, ss))
  else
    (OnRemote(network, p); (ps, ss))
`

func main() {
	// Compile: parse, type-check, run the §2.1 safety analyses, and
	// specialize with the JIT. The redirect rewrites destinations to a
	// fixed literal, which is single-node-safe.
	proto, err := planp.Compile(protocol, planp.WithVerification(planp.VerifySingleNode))
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	fmt.Printf("compiled with %s engine in %v\n", proto.EngineName(), proto.CodegenTime())
	fmt.Println("late checking:")
	fmt.Print(proto.Report())

	// Topology: client -- router -- {old server, new server}.
	net := planp.NewNetwork()
	client := net.NewHost("client", "10.0.1.1")
	router := net.NewRouter("router", "10.0.0.254")
	oldSrv := net.NewHost("old-server", "10.0.2.1")
	newSrv := net.NewHost("new-server", "10.0.2.2")
	net.Wire(client, router, planp.LinkConfig{Bandwidth: 10_000_000})
	net.Wire(router, oldSrv, planp.LinkConfig{Bandwidth: 100_000_000})
	net.Wire(router, newSrv, planp.LinkConfig{Bandwidth: 100_000_000})
	client.SetDefaultRoute(client.Ifaces()[0])

	// Both servers run an application on port 8080.
	oldSrv.BindTCP(8080, func(p *planp.Packet) {
		fmt.Printf("OLD server got: %s\n", p.Payload)
	})
	newSrv.BindTCP(8080, func(p *planp.Packet) {
		fmt.Printf("NEW server got: %s\n", p.Payload)
	})

	// Download the ASP into the router.
	rt, err := proto.DownloadTo(router, os.Stdout)
	if err != nil {
		log.Fatalf("download: %v", err)
	}

	// The client still addresses the OLD server.
	for i := 0; i < 3; i++ {
		req := planp.NewTCP(client.Addr, planp.MustAddr("10.0.2.1"),
			uint16(40000+i), 8080, 0, 0, []byte(fmt.Sprintf("request %d", i+1)))
		client.Send(req)
	}
	// Unrelated traffic passes through untouched.
	client.Send(planp.NewTCP(client.Addr, planp.MustAddr("10.0.2.1"), 40100, 22, 0, 0, []byte("ssh")))
	oldSrv.BindTCP(22, func(p *planp.Packet) {
		fmt.Printf("OLD server ssh: %s\n", p.Payload)
	})

	net.Run()

	fmt.Printf("\nrouter stats: %d packets processed, %d redirected (protocol state)\n",
		rt.Stats().Processed, rt.Instance().Proto.AsInt())
}
