// Package planp is a Go implementation of PLAN-P — the domain-specific
// language for Application-Specific Protocols (ASPs) from "Adapting
// Distributed Applications Using Extensible Networks" (Thibault, Marant,
// Muller; ICDCS 1999 / INRIA RR-3484) — together with the extensible
// network runtime and a deterministic network simulator to run ASPs on.
//
// An ASP is a small protocol program downloaded into routers and end
// hosts that changes how an existing application's packets are treated
// — degrading audio under congestion, balancing HTTP connections across
// a cluster, sharing a video stream between clients — without modifying
// the application itself.
//
// The pipeline mirrors the paper's runtime: source text is parsed and
// type-checked, the safety analyses of §2.1 run at download time (late
// checking), and the program is compiled by one of three engines — the
// portable tree-walking interpreter, a register bytecode VM, or the
// closure-specializing JIT derived from the interpreter (§2.2).
//
// Quick start:
//
//	net := planp.NewNetwork()
//	a := net.NewHost("a", "10.0.0.1")
//	b := net.NewHost("b", "10.0.0.2")
//	net.Wire(a, b, planp.LinkConfig{Bandwidth: 10e6})
//
//	proto, _ := planp.Compile(src)
//	proto.DownloadTo(b, os.Stdout)
//
//	a.Send(planp.NewUDP(a.Addr, b.Addr, 1000, 9, []byte("hi")))
//	net.Run()
//
// Every simulation carries an observability layer (docs/OBSERVABILITY.md):
// subscribe to packet-level events with WithObserver or WithTraceWriter,
// and read cumulative statistics from net.Metrics().
package planp

import (
	"io"
	"time"

	"planp.dev/planp/internal/lang/engine"
	"planp.dev/planp/internal/lang/typecheck"
	"planp.dev/planp/internal/lang/verify"
	"planp.dev/planp/internal/planprt"
)

// Engine selects a PLAN-P execution engine.
type Engine = planprt.EngineKind

// Available engines.
const (
	// Interp is the portable reference interpreter: slowest, simplest,
	// the engine new language features are debugged in.
	Interp = planprt.EngineInterp
	// Bytecode compiles to a register VM: no AST walk, but still an
	// instruction-dispatch loop.
	Bytecode = planprt.EngineBytecode
	// JIT is the closure-specializing compiler derived from the
	// interpreter — the production engine, competitive with native Go
	// handlers (the paper's headline result).
	JIT = planprt.EngineJIT
)

// VerifyPolicy controls late checking at compile/download time.
type VerifyPolicy = planprt.VerifyPolicy

// Verification policies.
const (
	// VerifyNetwork requires the full network-wide safety analyses;
	// the protocol may then be installed on any number of nodes.
	VerifyNetwork = planprt.VerifyNetwork
	// VerifySingleNode verifies under a single-node deployment
	// assumption; installation on a second node is refused.
	VerifySingleNode = planprt.VerifySingleNode
	// VerifyPrivileged skips rejection (the authenticated-download
	// path for protocols that legitimately fail the conservative
	// analyses, e.g. multicast). Results are still recorded.
	VerifyPrivileged = planprt.VerifyPrivileged
)

// Report is the outcome of the four safety analyses (§2.1): local and
// global termination, guaranteed delivery, and linear duplication.
type Report = verify.Result

// Option configures Compile.
type Option func(*planprt.Config)

// WithEngine selects the execution engine (default JIT).
func WithEngine(e Engine) Option {
	return func(c *planprt.Config) { c.Engine = e }
}

// WithVerification selects the late-checking policy (default
// VerifyNetwork).
func WithVerification(p VerifyPolicy) Option {
	return func(c *planprt.Config) { c.Verify = p }
}

// Protocol is a compiled, verified ASP ready for download.
type Protocol struct {
	prog *planprt.Program
}

// Compile parses, type-checks, verifies, and compiles PLAN-P source.
// Verification failure under VerifyNetwork/VerifySingleNode is an error
// — the paper's late-checking rejection.
func Compile(src string, opts ...Option) (*Protocol, error) {
	var cfg planprt.Config
	for _, opt := range opts {
		opt(&cfg)
	}
	p, err := planprt.Load(src, cfg)
	if err != nil {
		return nil, err
	}
	return &Protocol{prog: p}, nil
}

// Check parses and type-checks source without compiling, returning the
// resolution info (tooling entry point).
func Check(src string) (*typecheck.Info, error) {
	p, err := planprt.Load(src, planprt.Config{Verify: planprt.VerifyPrivileged})
	if err != nil {
		return nil, err
	}
	return p.Info, nil
}

// Report returns the safety-analysis results recorded at compile time.
func (p *Protocol) Report() *Report { return p.prog.Verify }

// CodegenTime is the time the engine spent compiling — the measurement
// of the paper's figure 3.
func (p *Protocol) CodegenTime() time.Duration { return p.prog.CodegenTime }

// EngineName identifies the engine the protocol was compiled for.
func (p *Protocol) EngineName() string { return p.prog.Compiled.EngineName() }

// DownloadTo installs the protocol on a node, replacing its standard
// packet processing. out receives the program's print/println output
// (nil discards it). Each download gets fresh protocol/channel state.
func (p *Protocol) DownloadTo(node *Node, out io.Writer) (*Runtime, error) {
	return planprt.Install(node, p.prog, out)
}

// Runtime is one installed protocol on one node.
type Runtime = planprt.Runtime

// Instance exposes a downloaded protocol's state (monitoring/tests).
type Instance = engine.Instance
