// Package asp embeds the Application-Specific Protocols from the
// paper's three experiments (§3), written in PLAN-P. These are the
// programs whose code-generation times figure 3 reports and whose
// behavior the benchmark harness reproduces.
package asp

import _ "embed"

// AudioRouter is the router half of the audio bandwidth-adaptation
// protocol (§3.1): degrade quality when the outgoing link is loaded.
//
//go:embed audio_router.planp
var AudioRouter string

// AudioClient is the client half (§3.1): restore degraded packets into
// the container the unmodified audio application expects.
//
//go:embed audio_client.planp
var AudioClient string

// HTTPGateway is the load-balancing cluster gateway (§3.2, figure 2).
// It is verified for single-node deployment.
//
//go:embed http_gateway.planp
var HTTPGateway string

// MPEGMonitor is the connection-registry monitor that turns the
// point-to-point video server into a multipoint one (§3.3).
//
//go:embed mpeg_monitor.planp
var MPEGMonitor string

// MPEGClient is the per-client capture protocol (§3.3).
//
//go:embed mpeg_client.planp
var MPEGClient string

// HTTPGatewayRandom is the random-selection balancing policy (§5's
// "several load-balancing algorithms", evaluated by swapping the ASP).
//
//go:embed http_gateway_random.planp
var HTTPGatewayRandom string

// HTTPGatewayLeastConn is the least-connections balancing policy.
//
//go:embed http_gateway_leastconn.planp
var HTTPGatewayLeastConn string

// HTTPGatewayFailover adds administrator-driven server removal and
// automatic connection failover (§5's fault-tolerance extension).
//
//go:embed http_gateway_failover.planp
var HTTPGatewayFailover string

// BenchCompute is a compute-bound classification kernel used by the
// engine benchmarks (no hash tables, no payload copies).
//
//go:embed bench_compute.planp
var BenchCompute string

// All maps the paper's program names to sources, in figure-3 order.
func All() []struct{ Name, Source string } {
	return []struct{ Name, Source string }{
		{"audio-router", AudioRouter},
		{"audio-client", AudioClient},
		{"http-gateway", HTTPGateway},
		{"mpeg-monitor", MPEGMonitor},
		{"mpeg-client", MPEGClient},
	}
}
