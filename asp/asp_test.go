package asp_test

import (
	"strings"
	"testing"

	"planp.dev/planp/asp"
	"planp.dev/planp/internal/lang/parser"
	"planp.dev/planp/internal/lang/typecheck"
	"planp.dev/planp/internal/lang/verify"
)

// check parses and type-checks one embedded program.
func check(t *testing.T, name, src string) *typecheck.Info {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	info, err := typecheck.Check(prog)
	if err != nil {
		t.Fatalf("%s: typecheck: %v", name, err)
	}
	return info
}

func TestAllProgramsCheck(t *testing.T) {
	for _, p := range asp.All() {
		check(t, p.Name, p.Source)
	}
}

// TestVerification pins each program's late-checking outcome under its
// intended deployment (§2.1, §3).
func TestVerification(t *testing.T) {
	cases := []struct {
		name, src  string
		singleNode bool
	}{
		{"audio-router", asp.AudioRouter, false}, // spread across routers
		{"audio-client", asp.AudioClient, false},
		{"http-gateway", asp.HTTPGateway, true}, // one gateway node
		{"mpeg-monitor", asp.MPEGMonitor, false},
		{"mpeg-client", asp.MPEGClient, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			info := check(t, tc.name, tc.src)
			r := verify.VerifyWith(info, verify.Options{SingleNode: tc.singleNode})
			if !r.AllOK() {
				t.Errorf("%s must pass all safety analyses:\n%s", tc.name, r)
			}
		})
	}
}

// TestProgramSizes keeps the programs in the same size class as the
// paper's (figure 3: 68/28/91/161/53 lines) — conciseness is one of the
// paper's claims ("the average size of the ASP is about 130 lines").
func TestProgramSizes(t *testing.T) {
	counts := map[string][2]int{ // name -> {min, max} source lines
		"audio-router": {30, 110},
		"audio-client": {10, 60},
		"http-gateway": {40, 140},
		"mpeg-monitor": {80, 220},
		"mpeg-client":  {20, 90},
	}
	for _, p := range asp.All() {
		lines := strings.Count(p.Source, "\n")
		bounds := counts[p.Name]
		if lines < bounds[0] || lines > bounds[1] {
			t.Errorf("%s is %d lines, outside the paper's size class [%d,%d]", p.Name, lines, bounds[0], bounds[1])
		}
	}
}
