package asp_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"planp.dev/planp/asp"
	"planp.dev/planp/internal/lang/diag"
	"planp.dev/planp/internal/lang/parser"
	"planp.dev/planp/internal/lang/typecheck"
)

// wantRe matches one expectation annotation inside a malformed program:
//
//	-- want: <line>:<col>-<line>:<col> <message substring>
var wantRe = regexp.MustCompile(`(?m)^-- want: (\d+):(\d+)-(\d+):(\d+) (.+)$`)

// TestMalformedCorpus runs the checker over every program in
// testdata/malformed and compares the collected diagnostics — all of
// them, with exact start and end positions — against the program's own
// "-- want:" annotations. This pins multi-error collection (independent
// errors in one run) and span accuracy (both columns of the underline).
func TestMalformedCorpus(t *testing.T) {
	files, err := filepath.Glob("testdata/malformed/*.planp")
	if err != nil || len(files) == 0 {
		t.Fatalf("no malformed corpus found: %v", err)
	}
	for _, path := range files {
		t.Run(filepath.Base(path), func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			src := string(raw)
			wants := wantRe.FindAllStringSubmatch(src, -1)
			if len(wants) == 0 {
				t.Fatalf("%s has no -- want: annotations", path)
			}

			prog, err := parser.Parse(src)
			if err == nil {
				_, err = typecheck.Check(prog)
			}
			if err == nil {
				t.Fatalf("%s checked cleanly, want %d diagnostics", path, len(wants))
			}
			ds := diag.Of(err)
			if len(ds) != len(wants) {
				t.Fatalf("%s produced %d diagnostics, want %d:\n%v", path, len(ds), len(wants), err)
			}
			for i, w := range wants {
				want := fmt.Sprintf("%s:%s - %s:%s", w[1], w[2], w[3], w[4])
				got := fmt.Sprintf("%s - %s", ds[i].Pos, ds[i].End)
				if got != want {
					t.Errorf("diagnostic %d spans %s, want %s (%s)", i, got, want, ds[i].Msg)
				}
				if !strings.Contains(ds[i].Msg, w[5]) {
					t.Errorf("diagnostic %d = %q, want substring %q", i, ds[i].Msg, w[5])
				}
			}
		})
	}
}

// TestTypecheckErrorAccessors: a multi-error check is one *typecheck.
// Error, reachable via errors.As, exposing every diagnostic and the
// first one individually; its rendered form names each position.
func TestTypecheckErrorAccessors(t *testing.T) {
	raw, err := os.ReadFile("testdata/malformed/scalars.planp")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := parser.Parse(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	_, err = typecheck.Check(prog)
	var te *typecheck.Error
	if !errors.As(err, &te) {
		t.Fatalf("error is %T, want *typecheck.Error: %v", err, err)
	}
	if len(te.Diagnostics()) != 3 {
		t.Fatalf("Diagnostics() = %d entries, want 3", len(te.Diagnostics()))
	}
	if first := te.First(); first != te.Diagnostics()[0] {
		t.Errorf("First() = %+v, want the first diagnostic", first)
	}
	// One rendered line per error, each carrying its position.
	lines := strings.Split(err.Error(), "\n")
	if len(lines) != 3 {
		t.Fatalf("rendered error has %d lines, want 3:\n%s", len(lines), err)
	}
	for i, ln := range lines {
		if !strings.Contains(ln, te.Diagnostics()[i].Pos.String()) {
			t.Errorf("line %d %q does not name its position %s", i, ln, te.Diagnostics()[i].Pos)
		}
	}
}

// TestSignatureExtraction: every in-tree program yields a channel
// signature with resolved packet types and valid source spans — the
// artifact the fleet compatibility gate compares across versions.
func TestSignatureExtraction(t *testing.T) {
	files, err := filepath.Glob("*.planp")
	if err != nil || len(files) == 0 {
		t.Fatalf("no in-tree programs found: %v", err)
	}
	for _, path := range files {
		t.Run(path, func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			info := check(t, path, string(raw))
			sig := info.Sig
			if sig == nil {
				t.Fatal("Check left Info.Sig nil")
			}
			if sig.ProtoState == "" {
				t.Error("signature has no protocol-state type")
			}
			if len(sig.Channels) == 0 {
				t.Fatal("signature lists no channels")
			}
			for _, ch := range sig.Channels {
				if ch.Name == "" || ch.Packet == "" {
					t.Errorf("channel entry incomplete: %+v", ch)
				}
				if !ch.Pos.IsValid() || !ch.End.IsValid() {
					t.Errorf("channel %s(%s) header span invalid: %s-%s", ch.Name, ch.Packet, ch.Pos, ch.End)
				}
				for _, snd := range ch.Sends {
					if snd.Channel == "" || snd.Packet == "" {
						t.Errorf("channel %s: unresolved send %+v", ch.Name, snd)
					}
					if !snd.Pos.IsValid() || !snd.End.IsValid() {
						t.Errorf("channel %s: send to %s has invalid span %s-%s", ch.Name, snd.Channel, snd.Pos, snd.End)
					}
				}
			}
		})
	}
}

// TestSignatureMPEGMonitor pins the richest in-tree signature: the
// monitor's four channel definitions (one reply channel plus three
// network overloads) and its cross-channel send.
func TestSignatureMPEGMonitor(t *testing.T) {
	info := check(t, "mpeg-monitor", asp.MPEGMonitor)
	sig := info.Sig
	if got := len(sig.Channels); got != 4 {
		t.Fatalf("mpeg-monitor defines %d channels, want 4", got)
	}
	if got := len(sig.ChannelsNamed("network")); got != 3 {
		t.Errorf("network has %d overloads, want 3", got)
	}
	var query *typecheck.ChannelSig
	for i := range sig.Channels {
		if sig.Channels[i].Name == "network" && sig.Channels[i].Packet == "ip*udp*char*int" {
			query = &sig.Channels[i]
		}
	}
	if query == nil {
		t.Fatal("query overload ip*udp*char*int not in signature")
	}
	if len(query.Sends) != 1 {
		t.Fatalf("query overload records %d sends, want 1: %+v", len(query.Sends), query.Sends)
	}
	snd := query.Sends[0]
	if snd.Channel != "mreply" || snd.Packet != "ip*udp*host*int*blob" || snd.Flood {
		t.Errorf("query send = %+v, want OnRemote(mreply, ip*udp*host*int*blob)", snd)
	}
}
