// Benchmarks regenerating the paper's tables and figures. One benchmark
// per figure/table plus the engine and design ablations;
// `go test -bench=. -benchmem` prints the measurements, and cmd/aspbench
// renders the same data as paper-style tables.
//
// Index:
//
//	BenchmarkCodegen*        figure 3 (code-generation time per ASP)
//	BenchmarkFigure6*        figure 6 (stepped-load audio run)
//	BenchmarkFigure7*        figure 7 (silent periods cell)
//	BenchmarkFigure8*        figure 8 (HTTP saturation per variant)
//	BenchmarkMPEGShare*      §3.3 (multipoint sharing run)
//	BenchmarkEngine*         §2.2/§2.4 engine ablation (per-packet cost)
//	BenchmarkVerify*         §2.1 late checking cost
//	BenchmarkFrontEnd*       parser/checker throughput
//	BenchmarkSimulator*      raw substrate cost (no PLAN-P)
package planp

import (
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"planp.dev/planp/asp"
	"planp.dev/planp/internal/apps/audio"
	"planp.dev/planp/internal/apps/city"
	"planp.dev/planp/internal/apps/httpd"
	"planp.dev/planp/internal/apps/mpeg"
	"planp.dev/planp/internal/experiments"
	"planp.dev/planp/internal/lang/langtest"
	"planp.dev/planp/internal/lang/parser"
	"planp.dev/planp/internal/lang/typecheck"
	"planp.dev/planp/internal/lang/value"
	"planp.dev/planp/internal/lang/verify"
	"planp.dev/planp/internal/netsim"
	"planp.dev/planp/internal/obs"
	"planp.dev/planp/internal/planprt"
)

// ---------------------------------------------------------------------------
// Figure 3: code-generation time

func benchCodegen(b *testing.B, src string, eng planprt.EngineKind) {
	b.Helper()
	// Parse/check once; figure 3 times code GENERATION (the program
	// arrives checked at the router in AST form, §2.4). NoCache: a cached
	// Load would measure a map lookup, not the compiler.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := planprt.Load(src, planprt.Config{Engine: eng, Verify: planprt.VerifyPrivileged, NoCache: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodegenAudioRouter(b *testing.B) { benchCodegen(b, asp.AudioRouter, planprt.EngineJIT) }
func BenchmarkCodegenAudioClient(b *testing.B) { benchCodegen(b, asp.AudioClient, planprt.EngineJIT) }
func BenchmarkCodegenHTTPGateway(b *testing.B) { benchCodegen(b, asp.HTTPGateway, planprt.EngineJIT) }
func BenchmarkCodegenMPEGMonitor(b *testing.B) { benchCodegen(b, asp.MPEGMonitor, planprt.EngineJIT) }
func BenchmarkCodegenMPEGClient(b *testing.B)  { benchCodegen(b, asp.MPEGClient, planprt.EngineJIT) }

func BenchmarkCodegenMPEGMonitorBytecode(b *testing.B) {
	benchCodegen(b, asp.MPEGMonitor, planprt.EngineBytecode)
}

// ---------------------------------------------------------------------------
// Figure 6: audio adaptation under stepped load

func BenchmarkFigure6AudioAdaptation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := audio.NewTestbed(audio.Options{Adaptation: audio.AdaptASP})
		if err != nil {
			b.Fatal(err)
		}
		res := tb.RunFigure6()
		if res.LargeKbps > 60 || res.SmallKbps < 80 {
			b.Fatalf("figure 6 shape broken: %+v", res)
		}
		b.ReportMetric(res.QuietKbps, "quiet-kbps")
		b.ReportMetric(res.LargeKbps, "large-kbps")
		b.ReportMetric(res.SmallKbps, "small-kbps")
	}
}

// ---------------------------------------------------------------------------
// Figure 7: silent periods (the over-capacity cell, adaptation on/off)

func BenchmarkFigure7SilentPeriods(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with, err := audio.RunFigure7(10_100_000, 60*time.Second, audio.Options{Adaptation: audio.AdaptASP, Engine: planprt.EngineJIT, Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		without, err := audio.RunFigure7(10_100_000, 60*time.Second, audio.Options{Adaptation: audio.AdaptNone, Engine: planprt.EngineJIT, Seed: 11})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(with.SilentPeriods), "gaps-adapted")
		b.ReportMetric(float64(without.SilentPeriods), "gaps-unadapted")
	}
}

// ---------------------------------------------------------------------------
// Figure 8: HTTP cluster saturation per variant

func benchFigure8(b *testing.B, variant httpd.Variant) {
	for i := 0; i < b.N; i++ {
		served, err := httpd.Saturation(httpd.Config{Variant: variant}, 15*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(served, "req/s")
	}
}

func BenchmarkFigure8SingleServer(b *testing.B)  { benchFigure8(b, httpd.VariantSingle) }
func BenchmarkFigure8NativeGateway(b *testing.B) { benchFigure8(b, httpd.VariantNativeGW) }
func BenchmarkFigure8ASPGateway(b *testing.B)    { benchFigure8(b, httpd.VariantASPGW) }
func BenchmarkFigure8Disjoint(b *testing.B)      { benchFigure8(b, httpd.VariantDisjoint) }

// ---------------------------------------------------------------------------
// §3.3: MPEG sharing

func BenchmarkMPEGShare4Viewers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := mpeg.Run(mpeg.Options{Viewers: 4, UseASPs: true}, 20*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if res.ServerConnections != 1 {
			b.Fatalf("sharing broken: %d connections", res.ServerConnections)
		}
		b.ReportMetric(float64(res.ServerFrames), "server-frames")
	}
}

func BenchmarkMPEGPointToPoint4Viewers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := mpeg.Run(mpeg.Options{Viewers: 4, UseASPs: false}, 20*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.ServerFrames), "server-frames")
	}
}

// ---------------------------------------------------------------------------
// Engine ablation: per-packet invocation cost (§2.2, §2.4)

func benchInvoke(b *testing.B, eng planprt.EngineKind, src string, pkt value.Value) {
	b.Helper()
	p, err := planprt.Load(src, planprt.Config{Engine: eng, Verify: planprt.VerifyPrivileged})
	if err != nil {
		b.Fatal(err)
	}
	ctx := langtest.NewCtx()
	inst, err := p.Compiled.NewInstance(ctx)
	if err != nil {
		b.Fatal(err)
	}
	ci := p.Info.ChannelsByName("network")[0].Index
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Sent = ctx.Sent[:0]
		if err := inst.Invoke(ci, ctx, pkt); err != nil {
			b.Fatal(err)
		}
	}
}

func gatewayPkt() value.Value {
	return langtest.TCPPacket("10.0.1.1", "10.0.0.100", 4001, 80, []byte("GET /index.html"))
}

func computePkt() value.Value {
	return langtest.UDPPacket("10.0.1.1", "10.0.2.9", 4001, 9, []byte("abcdefgh"))
}

func BenchmarkEngineInterpGateway(b *testing.B) {
	benchInvoke(b, planprt.EngineInterp, asp.HTTPGateway, gatewayPkt())
}
func BenchmarkEngineBytecodeGateway(b *testing.B) {
	benchInvoke(b, planprt.EngineBytecode, asp.HTTPGateway, gatewayPkt())
}
func BenchmarkEngineJITGateway(b *testing.B) {
	benchInvoke(b, planprt.EngineJIT, asp.HTTPGateway, gatewayPkt())
}

func BenchmarkEngineInterpCompute(b *testing.B) {
	benchInvoke(b, planprt.EngineInterp, asp.BenchCompute, computePkt())
}
func BenchmarkEngineBytecodeCompute(b *testing.B) {
	benchInvoke(b, planprt.EngineBytecode, asp.BenchCompute, computePkt())
}
func BenchmarkEngineJITCompute(b *testing.B) {
	benchInvoke(b, planprt.EngineJIT, asp.BenchCompute, computePkt())
}

// BenchmarkEngineNativeGateway is the hand-written Go handler: the
// paper's "built-in C" comparison point for the per-packet numbers.
func BenchmarkEngineNativeGateway(b *testing.B) {
	pkt := gatewayPkt()
	ctx := langtest.NewCtx()
	conns := map[string]value.Host{}
	count := int64(0)
	serverA := langtest.MustHost("10.0.0.81")
	serverB := langtest.MustHost("10.0.0.109")
	virtual := langtest.MustHost("10.0.0.100")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Sent = ctx.Sent[:0]
		iph := pkt.Vs[0].AsIP()
		tcph := pkt.Vs[1].AsTCP()
		if iph.Dst == virtual && tcph.DstPort == 80 {
			key := value.EncodeKey(value.TupleV(value.HostV(iph.Src), value.Int(int64(tcph.SrcPort))))
			srv, ok := conns[key]
			if !ok {
				if count%2 == 0 {
					srv = serverA
				} else {
					srv = serverB
				}
				conns[key] = srv
			}
			if tcph.Flags&value.TCPSyn != 0 {
				count++
			}
			h := *iph
			h.Dst = srv
			ctx.OnRemote("network", value.TupleV(value.IP(&h), pkt.Vs[1], pkt.Vs[2]))
		} else {
			ctx.OnRemote("network", pkt)
		}
	}
}

// ---------------------------------------------------------------------------
// §2.1: late-checking cost

func BenchmarkVerifyMPEGMonitor(b *testing.B) {
	prog, err := parser.Parse(asp.MPEGMonitor)
	if err != nil {
		b.Fatal(err)
	}
	info, err := typecheck.Check(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := verify.Verify(info); !r.AllOK() {
			b.Fatal("monitor should verify")
		}
	}
}

// ---------------------------------------------------------------------------
// Front-end throughput

func BenchmarkFrontEndParse(b *testing.B) {
	b.SetBytes(int64(len(asp.MPEGMonitor)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := parser.Parse(asp.MPEGMonitor); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrontEndTypecheck(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		prog, err := parser.Parse(asp.MPEGMonitor)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := typecheck.Check(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Substrate: raw simulator forwarding (no PLAN-P), to separate the
// simulator's cost from the language's in the figures above.

// benchForwarding is the shared body for the forwarding benchmarks:
// observe hooks the simulator's event bus (nil = unobserved, the no-op
// fast path the acceptance criteria bound to ±5% of the seed).
func benchForwarding(b *testing.B, observe func(*netsim.Simulator)) {
	b.Helper()
	sim := netsim.NewSimulator(1)
	a := netsim.NewNode(sim, "a", netsim.MustAddr("10.0.0.1"))
	r := netsim.NewNode(sim, "r", netsim.MustAddr("10.0.0.254"))
	c := netsim.NewNode(sim, "c", netsim.MustAddr("10.0.1.1"))
	r.Forwarding = true
	l1 := netsim.Connect(sim, a, r, netsim.LinkConfig{Bandwidth: 1_000_000_000})
	l2 := netsim.Connect(sim, r, c, netsim.LinkConfig{Bandwidth: 1_000_000_000})
	a.SetDefaultRoute(l1.Ifaces()[0])
	r.AddRoute(c.Addr, l2.Ifaces()[0])
	c.SetDefaultRoute(l2.Ifaces()[1])
	if observe != nil {
		observe(sim)
	}
	got := 0
	c.BindUDP(9, func(*netsim.Packet) { got++ })
	// A burst of packets is pipelined through the router per Run: the
	// link serializes them back to back and the batched delivery ring
	// drains them in one dispatch chain, so ns/op measures steady-state
	// per-packet forwarding instead of per-Run turnaround (seal check,
	// counter flush). The packets are hoisted out of the measured loop
	// and re-owned each round (local delivery disowned them; the loop
	// holds the only remaining references) — zero allocations per
	// packet on the unobserved path, gated by
	// TestSimulatorForwardingZeroAllocs.
	const burst = 64
	pkts := make([]*netsim.Packet, burst)
	for i := range pkts {
		pkts[i] = netsim.NewUDP(a.Addr, c.Addr, 1, 9, make([]byte, 1000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	sent := 0
	for i := 0; i < b.N; i += burst {
		for _, pkt := range pkts {
			pkt.IP.TTL = 64
			a.Send(pkt.Own())
		}
		sent += burst
		sim.Run()
	}
	b.StopTimer()
	if got != sent {
		b.Fatalf("delivered %d of %d", got, sent)
	}
}

// TestSimulatorForwardingZeroAllocs is the alloc gate on the benchmark
// loop above: send → forward → deliver over the same three-node
// topology must not allocate at all.
func TestSimulatorForwardingZeroAllocs(t *testing.T) {
	sim := netsim.NewSimulator(1)
	a := netsim.NewNode(sim, "a", netsim.MustAddr("10.0.0.1"))
	r := netsim.NewNode(sim, "r", netsim.MustAddr("10.0.0.254"))
	c := netsim.NewNode(sim, "c", netsim.MustAddr("10.0.1.1"))
	r.Forwarding = true
	l1 := netsim.Connect(sim, a, r, netsim.LinkConfig{Bandwidth: 1_000_000_000})
	l2 := netsim.Connect(sim, r, c, netsim.LinkConfig{Bandwidth: 1_000_000_000})
	a.SetDefaultRoute(l1.Ifaces()[0])
	r.AddRoute(c.Addr, l2.Ifaces()[0])
	c.SetDefaultRoute(l2.Ifaces()[1])
	c.BindUDP(9, func(*netsim.Packet) {})
	// Same burst shape as the benchmark so the batched-delivery chain
	// path is what gets gated (ring growth happens in AllocsPerRun's
	// warm-up iteration).
	pkts := make([]*netsim.Packet, 8)
	for i := range pkts {
		pkts[i] = netsim.NewUDP(a.Addr, c.Addr, 1, 9, make([]byte, 1000))
	}
	if n := testing.AllocsPerRun(200, func() {
		for _, pkt := range pkts {
			pkt.IP.TTL = 64
			a.Send(pkt.Own())
		}
		sim.Run()
	}); n != 0 {
		t.Errorf("forwarding hot path allocates %.1f/op, want 0", n)
	}
}

// BenchmarkSimulatorForwarding is the unobserved hot path: no event-bus
// subscribers, so publish sites are a nil/len check and no Event values
// are built.
func BenchmarkSimulatorForwarding(b *testing.B) {
	benchForwarding(b, nil)
}

// BenchmarkSimulatorForwardingObserved pays for observability: a
// counting sink subscribed to the bus, so every enqueue/forward/deliver
// builds and fans out an Event.
func BenchmarkSimulatorForwardingObserved(b *testing.B) {
	var counts obs.CountingSink
	benchForwarding(b, func(sim *netsim.Simulator) {
		sim.Events().Subscribe(&counts)
	})
	if counts.Total() == 0 {
		b.Fatal("observer saw no events")
	}
}

// BenchmarkEventQueue measures raw schedule/dispatch cost through the
// inlined 4-ary heap: one op pushes 256 events at scrambled timestamps
// (so siftDown does real comparisons, unlike monotone insertion) and
// drains them. Allocs/op must be 0 — events are inline heap values.
func BenchmarkEventQueue(b *testing.B) {
	sim := netsim.NewSimulator(1)
	fn := func() {}
	offsets := make([]time.Duration, 256)
	x := uint32(2463534242) // xorshift32; fixed seed keeps runs comparable
	for i := range offsets {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		offsets[i] = time.Duration(x%1000) * time.Microsecond
	}
	for _, d := range offsets { // grow the backing array once
		sim.After(d, fn)
	}
	sim.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range offsets {
			sim.After(d, fn)
		}
		sim.Run()
	}
}

// BenchmarkPacketFanout measures multicast fan-out: one owned packet
// enters a router and leaves on four interfaces. The fan-out disowns the
// packet (four receivers share the pointer) but still must not copy it —
// copy-on-write means the four deliveries share header and payload.
func BenchmarkPacketFanout(b *testing.B) {
	sim := netsim.NewSimulator(1)
	src := netsim.NewNode(sim, "src", netsim.MustAddr("10.0.0.1"))
	r := netsim.NewNode(sim, "r", netsim.MustAddr("10.0.0.254"))
	r.Forwarding = true
	up := netsim.Connect(sim, src, r, netsim.LinkConfig{Bandwidth: 1_000_000_000})
	src.SetDefaultRoute(up.Ifaces()[0])
	group := netsim.MustAddr("224.0.0.7")
	const leaves = 4
	got := 0
	for i := 0; i < leaves; i++ {
		leaf := netsim.NewNode(sim, fmt.Sprintf("leaf%d", i), netsim.MustAddr(fmt.Sprintf("10.0.1.%d", i+1)))
		down := netsim.Connect(sim, r, leaf, netsim.LinkConfig{Bandwidth: 1_000_000_000})
		r.AddMulticastRoute(group, down.Ifaces()[0])
		leaf.SetDefaultRoute(down.Ifaces()[1])
		leaf.JoinGroup(group)
		leaf.BindUDP(9, func(*netsim.Packet) { got++ })
	}
	// Hoisted and re-owned per round, as in benchForwarding: the fan-out
	// disowned the pointer but the loop holds the only live reference
	// once the deliveries ran, so the loop measures pure fan-out — zero
	// allocations per packet, gated by TestPacketFanoutZeroAllocs.
	pkt := netsim.NewUDP(src.Addr, group, 1, 9, make([]byte, 1000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt.IP.TTL = 64
		src.Send(pkt.Own())
		sim.Run()
	}
	if got != leaves*b.N {
		b.Fatalf("delivered %d of %d", got, leaves*b.N)
	}
}

// TestPacketFanoutZeroAllocs is the alloc gate on the fan-out loop
// above: one owned packet out four interfaces must share its header and
// payload across all deliveries without allocating.
func TestPacketFanoutZeroAllocs(t *testing.T) {
	sim := netsim.NewSimulator(1)
	src := netsim.NewNode(sim, "src", netsim.MustAddr("10.0.0.1"))
	r := netsim.NewNode(sim, "r", netsim.MustAddr("10.0.0.254"))
	r.Forwarding = true
	up := netsim.Connect(sim, src, r, netsim.LinkConfig{Bandwidth: 1_000_000_000})
	src.SetDefaultRoute(up.Ifaces()[0])
	group := netsim.MustAddr("224.0.0.7")
	for i := 0; i < 4; i++ {
		leaf := netsim.NewNode(sim, fmt.Sprintf("leaf%d", i), netsim.MustAddr(fmt.Sprintf("10.0.1.%d", i+1)))
		down := netsim.Connect(sim, r, leaf, netsim.LinkConfig{Bandwidth: 1_000_000_000})
		r.AddMulticastRoute(group, down.Ifaces()[0])
		leaf.SetDefaultRoute(down.Ifaces()[1])
		leaf.JoinGroup(group)
		leaf.BindUDP(9, func(*netsim.Packet) {})
	}
	pkt := netsim.NewUDP(src.Addr, group, 1, 9, make([]byte, 1000))
	if n := testing.AllocsPerRun(200, func() {
		pkt.IP.TTL = 64
		src.Send(pkt.Own())
		sim.Run()
	}); n != 0 {
		t.Errorf("fan-out hot path allocates %.1f/op, want 0", n)
	}
}

// timerLoadOffsets builds a scrambled timer schedule for the wheel
// benchmarks: n offsets spread over ~500 ms (filling wheel levels 0 and
// 1, with slot ties, and cascading through level 2 on the sentinel's
// drain) plus a sentinel at exactly 2^37 ns — one full level-2
// rotation. The sentinel makes each round's clock advance an amount
// that is ≡ 0 modulo every level's rotation, so round k+1 maps onto
// the SAME slot indices as round k and slot capacities warm once
// instead of growing forever as the clock marches into fresh buckets.
func timerLoadOffsets(n int, seed uint32) []time.Duration {
	offsets := make([]time.Duration, n+1)
	x := seed // xorshift32; fixed seed keeps runs comparable
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		offsets[i] = time.Duration(x%500_000_000) * time.Nanosecond
	}
	offsets[n] = 1 << 37 * time.Nanosecond
	return offsets
}

// benchTimerLoad drives the scheduler with a dense scrambled timer
// population — 4096 pending events across wheel levels 0 and 1 — per
// op: schedule everything, then drain. This is the load shape where
// heap sift traffic dominates and the wheel's O(1) slot appends win;
// the On/Off pair quantifies the difference on identical schedules.
func benchTimerLoad(b *testing.B, wheel bool) {
	b.Helper()
	sim := netsim.New(netsim.WithSeed(1), netsim.WithWheel(wheel))
	fn := func() {}
	offsets := timerLoadOffsets(4096, 2463534242)
	for _, d := range offsets { // grow queue/slot backing arrays once
		sim.After(d, fn)
	}
	sim.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, d := range offsets {
			sim.After(d, fn)
		}
		sim.Run()
	}
}

// BenchmarkTimerWheel measures schedule+dispatch through the hierarchical
// timing wheel (wheel.go); BenchmarkTimerWheelOff is the same load on
// the bare 4-ary heap. Both must run at 0 allocs/op — gated by
// TestTimerWheelZeroAllocs.
func BenchmarkTimerWheel(b *testing.B)    { benchTimerLoad(b, true) }
func BenchmarkTimerWheelOff(b *testing.B) { benchTimerLoad(b, false) }

// TestTimerWheelZeroAllocs gates the steady-state wheel path: once slot
// and heap backing arrays have grown, scheduling and draining a dense
// timer population must not allocate.
func TestTimerWheelZeroAllocs(t *testing.T) {
	sim := netsim.New(netsim.WithSeed(1), netsim.WithWheel(true))
	fn := func() {}
	offsets := timerLoadOffsets(512, 88172645)
	// Three warm-up rounds: the first grows each touched slot's array
	// (and places the first sentinel before the frontiers are moving
	// periodically), the rest run the now-periodic slot mapping to
	// settle capacities.
	for round := 0; round < 3; round++ {
		for _, d := range offsets {
			sim.After(d, fn)
		}
		sim.Run()
	}
	if n := testing.AllocsPerRun(100, func() {
		for _, d := range offsets {
			sim.After(d, fn)
		}
		sim.Run()
	}); n != 0 {
		t.Errorf("wheel schedule+drain allocates %.1f/op, want 0", n)
	}
}

// benchBatchedTopology wires the two-node link the batched-delivery
// benchmark and its alloc gate share: a sender bursting straight to a
// receiver, so every packet after the first rides the link's pending
// ring and the chained dispatch in deliverBatch instead of its own heap
// event.
func benchBatchedTopology(sim *netsim.Simulator, count *int) (send func(burst []*netsim.Packet), a, b *netsim.Node) {
	a = netsim.NewNode(sim, "a", netsim.MustAddr("10.0.0.1"))
	b = netsim.NewNode(sim, "b", netsim.MustAddr("10.0.0.2"))
	l := netsim.Connect(sim, a, b, netsim.LinkConfig{Bandwidth: 1_000_000_000})
	a.SetDefaultRoute(l.Ifaces()[0])
	b.BindUDP(9, func(*netsim.Packet) { *count++ })
	send = func(burst []*netsim.Packet) {
		for _, pkt := range burst {
			pkt.IP.TTL = 64
			a.Send(pkt.Own())
		}
		sim.Run()
	}
	return send, a, b
}

// BenchmarkBatchedDelivery measures the per-packet cost of a link-rate
// burst: 64 packets serialized back to back arrive as ONE scheduled
// event plus 63 chained deliveries (link.go's pending ring), where the
// unbatched engine scheduled 64 heap events. 0 allocs/op, gated by
// TestBatchedDeliveryZeroAllocs.
func BenchmarkBatchedDelivery(b *testing.B) {
	sim := netsim.NewSimulator(1)
	got := 0
	send, a, dst := benchBatchedTopology(sim, &got)
	const burst = 64
	pkts := make([]*netsim.Packet, burst)
	for i := range pkts {
		pkts[i] = netsim.NewUDP(a.Addr, dst.Addr, 1, 9, make([]byte, 1000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	sent := 0
	for i := 0; i < b.N; i += burst {
		send(pkts)
		sent += burst
	}
	b.StopTimer()
	if got != sent {
		b.Fatalf("delivered %d of %d", got, sent)
	}
}

// TestBatchedDeliveryZeroAllocs gates the pending-ring chain: a warmed
// burst path (ring capacity grown) must deliver without allocating.
func TestBatchedDeliveryZeroAllocs(t *testing.T) {
	sim := netsim.NewSimulator(1)
	got := 0
	send, a, dst := benchBatchedTopology(sim, &got)
	pkts := make([]*netsim.Packet, 16)
	for i := range pkts {
		pkts[i] = netsim.NewUDP(a.Addr, dst.Addr, 1, 9, make([]byte, 1000))
	}
	if n := testing.AllocsPerRun(200, func() {
		send(pkts)
	}); n != 0 {
		t.Errorf("batched delivery allocates %.1f/op, want 0", n)
	}
}

// benchCityScale runs the full metropolitan city (10k+ edge routers,
// ~1M modeled clients) on the given shard count and reports engine
// throughput: events/s over the whole run and packets/s/core, where the
// core count is min(shards, GOMAXPROCS) — the event loops the machine
// can actually run at once. cmd/benchjson turns these custom units into
// BENCH_scale.json via `make bench-scale`.
func benchCityScale(b *testing.B, shards int) {
	cfg := city.Full
	cfg.Shards = shards
	// One unmeasured warm-up run: the first city in a fresh process pays
	// for growing the allocator arena to fit the 10k-router topology,
	// which later runs reuse. Measuring from the second run on keeps
	// -count repetitions comparable with each other.
	if _, err := city.Run(cfg); err != nil {
		b.Fatal(err)
	}
	var events, packets int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := city.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += int64(res.Events)
		packets += res.Packets
	}
	sec := b.Elapsed().Seconds()
	cores := min(shards, runtime.GOMAXPROCS(0))
	b.ReportMetric(float64(events)/sec, "events/s")
	b.ReportMetric(float64(packets)/sec/float64(cores), "pkts/s/core")
}

func BenchmarkCityScale1(b *testing.B) { benchCityScale(b, 1) }
func BenchmarkCityScale4(b *testing.B) { benchCityScale(b, 4) }

// BenchmarkAspbenchSweep runs a full experiment grid through the
// parallel driver (the MPEG viewers x mode sweep — 8 independent
// simulators per op), end to end, exactly as `aspbench -exp mpeg`
// does. This is the driver-level number the -parallel flag moves.
func BenchmarkAspbenchSweep(b *testing.B) {
	var sweep experiments.Experiment
	for _, e := range experiments.All() {
		if e.Name == "mpeg" {
			sweep = e
		}
	}
	if sweep.Run == nil {
		b.Fatal("mpeg experiment not registered")
	}
	opts := experiments.Options{Parallel: runtime.GOMAXPROCS(0)}
	// Allocation count is reported (and lands in BENCH_core.json) so a
	// driver- or substrate-level allocation regression moves a tracked
	// number even though a full sweep can't be zero-alloc.
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sweep.Run(io.Discard, opts); err != nil {
			b.Fatal(err)
		}
	}
}
