package planp_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	planp "planp.dev/planp"
	"planp.dev/planp/asp"
)

const forwardCounter = `
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
`

func TestCompileDefaults(t *testing.T) {
	proto, err := planp.Compile(forwardCounter)
	if err != nil {
		t.Fatal(err)
	}
	if proto.EngineName() != "jit" {
		t.Errorf("default engine %s", proto.EngineName())
	}
	if !proto.Report().AllOK() {
		t.Errorf("report:\n%s", proto.Report())
	}
	if proto.CodegenTime() <= 0 {
		t.Error("codegen time not recorded")
	}
}

func TestCompileEngineOption(t *testing.T) {
	for _, eng := range []planp.Engine{planp.Interp, planp.Bytecode, planp.JIT} {
		proto, err := planp.Compile(forwardCounter, planp.WithEngine(eng))
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if planp.Engine(proto.EngineName()) != eng {
			t.Errorf("engine %s, want %s", proto.EngineName(), eng)
		}
	}
	if _, err := planp.Compile(forwardCounter, planp.WithEngine("nonesuch")); err == nil {
		t.Error("unknown engine should fail")
	}
}

func TestCompileRejectsUnsafe(t *testing.T) {
	dropper := `
channel network(ps : unit, ss : unit, p : ip*udp*blob) is (ps, ss)
`
	if _, err := planp.Compile(dropper); err == nil {
		t.Fatal("packet dropper must be rejected")
	}
	proto, err := planp.Compile(dropper, planp.WithVerification(planp.VerifyPrivileged))
	if err != nil {
		t.Fatalf("privileged compile: %v", err)
	}
	if proto.Report().AllOK() {
		t.Error("privileged compile should still record the failure")
	}
}

func TestCompileSyntaxAndTypeErrors(t *testing.T) {
	if _, err := planp.Compile("val x ="); err == nil {
		t.Error("syntax error not reported")
	}
	if _, err := planp.Compile(`
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + "x", ss))
`); err == nil {
		t.Error("type error not reported")
	}
}

func TestCheckEntryPoint(t *testing.T) {
	info, err := planp.Check(asp.MPEGMonitor)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Channels) != 4 {
		t.Errorf("channels = %d", len(info.Channels))
	}
}

func TestEndToEndThroughPublicAPI(t *testing.T) {
	net := planp.NewNetwork(planp.WithSeed(9))
	client := net.NewHost("client", "10.0.1.1")
	router := net.NewRouter("router", "10.0.0.254")
	server := net.NewHost("server", "10.0.2.1")
	net.Wire(client, router, planp.LinkConfig{Bandwidth: 10_000_000})
	net.Wire(router, server, planp.LinkConfig{Bandwidth: 10_000_000})
	client.SetDefaultRoute(client.Ifaces()[0])

	var out bytes.Buffer
	proto, err := planp.Compile(`
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (println("forwarding " ^ itos(blobLen(#3 p)) ^ " bytes");
   OnRemote(network, p);
   (ps + 1, ss))
`)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := proto.DownloadTo(router, &out)
	if err != nil {
		t.Fatal(err)
	}

	got := 0
	server.BindUDP(7, func(*planp.Packet) { got++ })
	for i := 0; i < 3; i++ {
		client.Send(planp.NewUDP(client.Addr, server.Addr, 1000, 7, []byte("abc")))
	}
	net.Run()

	if got != 3 {
		t.Errorf("server received %d, want 3", got)
	}
	if rt.Stats().Processed != 3 {
		t.Errorf("processed %d", rt.Stats().Processed)
	}
	if strings.Count(out.String(), "forwarding 3 bytes") != 3 {
		t.Errorf("output %q", out.String())
	}
	if got := rt.Instance().Proto.AsInt(); got != 3 {
		t.Errorf("protocol state %d", got)
	}
}

func TestSegmentHelpers(t *testing.T) {
	net := planp.NewNetwork()
	a := net.NewHost("a", "10.0.0.1")
	b := net.NewHost("b", "10.0.0.2")
	seg := net.NewSegment("lan", planp.LinkConfig{Bandwidth: 10_000_000})
	net.Attach(seg, a)
	net.Attach(seg, b)
	got := 0
	b.BindUDP(5, func(*planp.Packet) { got++ })
	a.Send(planp.NewUDP(a.Addr, b.Addr, 1, 5, nil))
	net.Run()
	if got != 1 {
		t.Errorf("segment delivery = %d", got)
	}
}

func TestNetworkClock(t *testing.T) {
	net := planp.NewNetwork()
	fired := []time.Duration{}
	net.At(5*time.Millisecond, func() { fired = append(fired, net.Now()) })
	net.After(10*time.Millisecond, func() { fired = append(fired, net.Now()) })
	net.RunFor(7 * time.Millisecond)
	if len(fired) != 1 || fired[0] != 5*time.Millisecond {
		t.Errorf("fired %v after 7ms", fired)
	}
	net.RunUntil(20 * time.Millisecond)
	if len(fired) != 2 || fired[1] != 10*time.Millisecond {
		t.Errorf("fired %v after 20ms", fired)
	}
	if net.Now() != 20*time.Millisecond {
		t.Errorf("now = %v", net.Now())
	}
}

func TestSingleNodeDownloadLimitThroughAPI(t *testing.T) {
	net := planp.NewNetwork()
	a := net.NewHost("a", "10.0.0.1")
	b := net.NewHost("b", "10.0.0.2")
	proto, err := planp.Compile(asp.HTTPGateway, planp.WithVerification(planp.VerifySingleNode))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proto.DownloadTo(a, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := proto.DownloadTo(b, nil); err == nil {
		t.Error("second download of a single-node protocol must fail")
	}
}

func TestAllPaperASPsCompileThroughAPI(t *testing.T) {
	policies := map[string]planp.VerifyPolicy{
		"audio-router": planp.VerifyNetwork,
		"audio-client": planp.VerifyNetwork,
		"http-gateway": planp.VerifySingleNode,
		"mpeg-monitor": planp.VerifyNetwork,
		"mpeg-client":  planp.VerifyNetwork,
	}
	for _, p := range asp.All() {
		if _, err := planp.Compile(p.Source, planp.WithVerification(policies[p.Name])); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestNetworkOptionsObservability(t *testing.T) {
	var counts planp.EventCounts
	var trace bytes.Buffer
	ring := planp.NewEventRing(8)
	net := planp.NewNetwork(
		planp.WithSeed(7),
		planp.WithObserver(&counts),
		planp.WithObserver(ring),
		planp.WithTraceWriter(&trace),
	)
	a := net.NewHost("a", "10.0.1.1")
	r := net.NewRouter("r", "10.0.0.254")
	b := net.NewHost("b", "10.0.2.1")
	net.Wire(a, r, planp.LinkConfig{Bandwidth: 10_000_000})
	net.Wire(r, b, planp.LinkConfig{Bandwidth: 10_000_000})
	a.SetDefaultRoute(a.Ifaces()[0])
	got := 0
	b.BindUDP(7, func(*planp.Packet) { got++ })
	a.Send(planp.NewUDP(a.Addr, b.Addr, 1000, 7, []byte("hi")))
	net.Run()

	if got != 1 {
		t.Fatalf("delivered %d", got)
	}
	if counts.Count(planp.EventDeliver) != 1 {
		t.Errorf("deliver events = %d", counts.Count(planp.EventDeliver))
	}
	if counts.Count(planp.EventForward) != 1 {
		t.Errorf("forward events = %d", counts.Count(planp.EventForward))
	}
	if ring.Len() == 0 {
		t.Error("ring observer saw nothing")
	}
	if !strings.Contains(trace.String(), "deliver") {
		t.Errorf("trace log missing deliver line:\n%s", trace.String())
	}
	// The metrics registry agrees with the event stream.
	if snap := net.Metrics().Snapshot(); snap["node.b.delivered_pkts"] != 1 {
		t.Errorf("registry delivered_pkts = %d", snap["node.b.delivered_pkts"])
	}
	// Node.Stats() is a snapshot of the same instruments.
	if b.Stats().DeliveredPkts != 1 {
		t.Errorf("Stats().DeliveredPkts = %d", b.Stats().DeliveredPkts)
	}
}

func TestNetworkWithSeed(t *testing.T) {
	// Seeded networks deliver traffic like the default constructor.
	run := func(net *planp.Network) int {
		a := net.NewHost("a", "10.0.0.1")
		b := net.NewHost("b", "10.0.0.2")
		net.Wire(a, b, planp.LinkConfig{Bandwidth: 10_000_000})
		n := 0
		b.BindUDP(5, func(*planp.Packet) { n++ })
		a.Send(planp.NewUDP(a.Addr, b.Addr, 1, 5, nil))
		net.Run()
		return n
	}
	if got := run(planp.NewNetwork(planp.WithSeed(3))); got != 1 {
		t.Errorf("options constructor delivered %d", got)
	}
}

func TestRunOptions(t *testing.T) {
	net := planp.NewNetwork()
	fired := 0
	for i := 1; i <= 6; i++ {
		net.At(time.Duration(i)*time.Millisecond, func() { fired++ })
	}
	// Event budget: stops mid-queue without advancing to any deadline.
	if n := net.Run(planp.WithMaxEvents(2)); n != 2 || fired != 2 {
		t.Fatalf("WithMaxEvents(2) ran %d (fired %d)", n, fired)
	}
	if net.Now() != 2*time.Millisecond {
		t.Errorf("now = %v after budget stop", net.Now())
	}
	// Deadline: runs events through 4ms and pins the clock there.
	if n := net.Run(planp.WithDeadline(4 * time.Millisecond)); n != 2 || fired != 4 {
		t.Fatalf("WithDeadline ran %d (fired %d)", n, fired)
	}
	// Duration: relative to the clock at Run time.
	if n := net.Run(planp.WithDuration(time.Millisecond)); n != 1 || fired != 5 {
		t.Fatalf("WithDuration ran %d (fired %d)", n, fired)
	}
	if net.Now() != 5*time.Millisecond {
		t.Errorf("now = %v after WithDuration(1ms)", net.Now())
	}
	// Combined: deadline far out, budget binds first.
	if n := net.Run(planp.WithDeadline(time.Second), planp.WithMaxEvents(1)); n != 1 || fired != 6 {
		t.Fatalf("combined options ran %d (fired %d)", n, fired)
	}
	// Unbounded drain of an empty queue still advances nothing.
	if n := net.Run(); n != 0 {
		t.Errorf("drain ran %d", n)
	}
}
