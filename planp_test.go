package planp_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	planp "planp.dev/planp"
	"planp.dev/planp/asp"
)

const forwardCounter = `
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
`

func TestCompileDefaults(t *testing.T) {
	proto, err := planp.Compile(forwardCounter)
	if err != nil {
		t.Fatal(err)
	}
	if proto.EngineName() != "jit" {
		t.Errorf("default engine %s", proto.EngineName())
	}
	if !proto.Report().AllOK() {
		t.Errorf("report:\n%s", proto.Report())
	}
	if proto.CodegenTime() <= 0 {
		t.Error("codegen time not recorded")
	}
}

func TestCompileEngineOption(t *testing.T) {
	for _, eng := range []planp.Engine{planp.Interp, planp.Bytecode, planp.JIT} {
		proto, err := planp.Compile(forwardCounter, planp.WithEngine(eng))
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if planp.Engine(proto.EngineName()) != eng {
			t.Errorf("engine %s, want %s", proto.EngineName(), eng)
		}
	}
	if _, err := planp.Compile(forwardCounter, planp.WithEngine("nonesuch")); err == nil {
		t.Error("unknown engine should fail")
	}
}

func TestCompileRejectsUnsafe(t *testing.T) {
	dropper := `
channel network(ps : unit, ss : unit, p : ip*udp*blob) is (ps, ss)
`
	if _, err := planp.Compile(dropper); err == nil {
		t.Fatal("packet dropper must be rejected")
	}
	proto, err := planp.Compile(dropper, planp.WithVerification(planp.VerifyPrivileged))
	if err != nil {
		t.Fatalf("privileged compile: %v", err)
	}
	if proto.Report().AllOK() {
		t.Error("privileged compile should still record the failure")
	}
}

func TestCompileSyntaxAndTypeErrors(t *testing.T) {
	if _, err := planp.Compile("val x ="); err == nil {
		t.Error("syntax error not reported")
	}
	if _, err := planp.Compile(`
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + "x", ss))
`); err == nil {
		t.Error("type error not reported")
	}
}

func TestCheckEntryPoint(t *testing.T) {
	info, err := planp.Check(asp.MPEGMonitor)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Channels) != 4 {
		t.Errorf("channels = %d", len(info.Channels))
	}
}

func TestEndToEndThroughPublicAPI(t *testing.T) {
	net := planp.NewNetwork(9)
	client := net.NewHost("client", "10.0.1.1")
	router := net.NewRouter("router", "10.0.0.254")
	server := net.NewHost("server", "10.0.2.1")
	net.Wire(client, router, planp.LinkConfig{Bandwidth: 10_000_000})
	net.Wire(router, server, planp.LinkConfig{Bandwidth: 10_000_000})
	client.SetDefaultRoute(client.Ifaces()[0])

	var out bytes.Buffer
	proto, err := planp.Compile(`
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (println("forwarding " ^ itos(blobLen(#3 p)) ^ " bytes");
   OnRemote(network, p);
   (ps + 1, ss))
`)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := proto.DownloadTo(router, &out)
	if err != nil {
		t.Fatal(err)
	}

	got := 0
	server.BindUDP(7, func(*planp.Packet) { got++ })
	for i := 0; i < 3; i++ {
		client.Send(planp.NewUDP(client.Addr, server.Addr, 1000, 7, []byte("abc")))
	}
	net.Run()

	if got != 3 {
		t.Errorf("server received %d, want 3", got)
	}
	if rt.Stats.Processed != 3 {
		t.Errorf("processed %d", rt.Stats.Processed)
	}
	if strings.Count(out.String(), "forwarding 3 bytes") != 3 {
		t.Errorf("output %q", out.String())
	}
	if got := rt.Instance().Proto.AsInt(); got != 3 {
		t.Errorf("protocol state %d", got)
	}
}

func TestSegmentHelpers(t *testing.T) {
	net := planp.NewNetwork(1)
	a := net.NewHost("a", "10.0.0.1")
	b := net.NewHost("b", "10.0.0.2")
	seg := net.NewSegment("lan", planp.LinkConfig{Bandwidth: 10_000_000})
	net.Attach(seg, a)
	net.Attach(seg, b)
	got := 0
	b.BindUDP(5, func(*planp.Packet) { got++ })
	a.Send(planp.NewUDP(a.Addr, b.Addr, 1, 5, nil))
	net.Run()
	if got != 1 {
		t.Errorf("segment delivery = %d", got)
	}
}

func TestNetworkClock(t *testing.T) {
	net := planp.NewNetwork(1)
	fired := []time.Duration{}
	net.At(5*time.Millisecond, func() { fired = append(fired, net.Now()) })
	net.After(10*time.Millisecond, func() { fired = append(fired, net.Now()) })
	net.RunFor(7 * time.Millisecond)
	if len(fired) != 1 || fired[0] != 5*time.Millisecond {
		t.Errorf("fired %v after 7ms", fired)
	}
	net.RunUntil(20 * time.Millisecond)
	if len(fired) != 2 || fired[1] != 10*time.Millisecond {
		t.Errorf("fired %v after 20ms", fired)
	}
	if net.Now() != 20*time.Millisecond {
		t.Errorf("now = %v", net.Now())
	}
}

func TestSingleNodeDownloadLimitThroughAPI(t *testing.T) {
	net := planp.NewNetwork(1)
	a := net.NewHost("a", "10.0.0.1")
	b := net.NewHost("b", "10.0.0.2")
	proto, err := planp.Compile(asp.HTTPGateway, planp.WithVerification(planp.VerifySingleNode))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proto.DownloadTo(a, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := proto.DownloadTo(b, nil); err == nil {
		t.Error("second download of a single-node protocol must fail")
	}
}

func TestAllPaperASPsCompileThroughAPI(t *testing.T) {
	policies := map[string]planp.VerifyPolicy{
		"audio-router": planp.VerifyNetwork,
		"audio-client": planp.VerifyNetwork,
		"http-gateway": planp.VerifySingleNode,
		"mpeg-monitor": planp.VerifyNetwork,
		"mpeg-client":  planp.VerifyNetwork,
	}
	for _, p := range asp.All() {
		if _, err := planp.Compile(p.Source, planp.WithVerification(policies[p.Name])); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}
