module planp.dev/planp

go 1.22
